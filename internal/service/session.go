package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"crowdfusion/internal/bookdata"
	"crowdfusion/internal/core"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/eval"
	"crowdfusion/internal/store"
	"crowdfusion/internal/trace"
	"crowdfusion/internal/worlds"
)

// State machine errors, mapped to HTTP statuses by the server layer.
var (
	// ErrVersionConflict is returned when an answer set references a
	// posterior version that is neither current nor a recognized retry —
	// the client lost a race with another merge and must re-select.
	ErrVersionConflict = errors.New("service: answer set references a stale posterior version; re-select")
	// ErrBudgetExhausted is returned when a merge would spend more tasks
	// than the session budget has left.
	ErrBudgetExhausted = errors.New("service: session budget exhausted")
	// ErrStore is returned when the session store fails: the merge was NOT
	// applied (persistence happens before the in-memory commit, so a
	// client seeing this error can safely retry).
	ErrStore = errors.New("service: session store failure")
	// ErrNoPendingBatch rejects a partial answer when no selection is
	// outstanding at the current version: there is no batch to answer.
	ErrNoPendingBatch = errors.New("service: no batch pending at the current version; select first")
	// ErrNotInBatch rejects a partial answer naming a task outside the
	// pending selected batch.
	ErrNotInBatch = errors.New("service: partial answer names a task outside the pending batch")
	// ErrAnswerConflict rejects a judgment contradicting one already
	// journaled for the same task in the pending batch.
	ErrAnswerConflict = errors.New("service: judgment contradicts one already recorded for this task")
)

// errSessionRetired reports that this Session instance was evicted,
// unloaded, or deleted after the caller obtained its pointer. Handlers
// catch it and re-resolve the ID through the manager (one retry); it never
// reaches the wire unless the session retires twice in a row, where it
// maps to a retryable 503.
var errSessionRetired = errors.New("service: session instance retired; re-resolve")

// Session is one refinement loop: a posterior distribution refined round by
// round through the select → await → merge state machine.
//
// Every operation runs under one per-session mutex, so concurrent requests
// against the same session serialize: two merges can never interleave, a
// select always sees a complete posterior, and the version counter names
// each posterior unambiguously. Cross-session requests share nothing and
// run fully in parallel.
type Session struct {
	id       string
	selector core.Selector
	selName  string
	pc       float64
	k        int
	budget   int

	mu        sync.Mutex
	posterior *dist.Joint
	version   int  // number of merges applied
	spent     int  // tasks asked (accounted at merge time)
	done      bool // latched when a selection finds nothing uncertain
	rounds    []RoundInfo

	// sel caches the last selection; valid while selVersion matches the
	// current version and the requested k matches, so clients that retry
	// a select (or poll it from several workers) get one batch per
	// posterior instead of recomputing the greedy sweep.
	sel        *SelectResponse
	selVersion int
	selK       int

	// merges logs applied answer sets by content hash for idempotent
	// replay of retried merges. mergeWorkers remembers, for every round
	// whose observations were journaled, the canonical worker attribution
	// of the committed set — a retry may replay the judgments but never
	// re-attribute them (ErrAttributionConflict).
	merges       map[uint64]*AnswersResponse
	mergeWorkers map[uint64]string

	// Worker model state. workerModel names how crowd accuracy enters
	// merging (fixed / em / dawid-skene); anonWorker is the identity that
	// unattributed (legacy-form) judgments are recorded under.
	// observations accumulates every journaled crowd.Answer-shaped
	// observation in journal order; each entry's Version is the committed
	// posterior version at journaling time, which is what lets recovery
	// reconstruct the exact estimate sequence (the estimates conditioning
	// the merge committed at version v were refit from observations with
	// Version < v only — refits run at commit, after the round's own
	// observations landed but before the next round's merge).
	workerModel string
	anonWorker  string

	observations []store.Observation
	// workerSens/workerSpec are the smoothed per-worker channel estimates
	// from the last refit: the raw estimator output shrunk toward the
	// configured pc by a Beta prior of strength workerPriorStrength, so a
	// worker with no evidence sits exactly at pc. workerRaw keeps the
	// unsmoothed balanced accuracy for reporting. All nil before the
	// first refit (and always, under the fixed model).
	workerSens map[string]float64
	workerSpec map[string]float64
	workerRaw  map[string]float64
	refits     int

	// pendWorkers maps pending-batch tasks to the worker each journaled
	// judgment was attributed to (absent for legacy-form judgments on
	// fixed sessions, which journal no observation).
	pendWorkers map[int]string

	// sensBuf/specBuf are the reusable per-judgment channel buffers for
	// weighted conditioning: the conditioning kernel consumes them before
	// returning, so they recycle across merges and the weighted path stops
	// allocating its channel vectors per call. Guarded by mu like all
	// session scratch.
	sensBuf []float64
	specBuf []float64

	// replaying suppresses observation accumulation inside Merge during
	// record replay: restoreSession re-seeds observations straight from
	// the record (exact journal order and metadata) before replaying each
	// round, so the merge path appending them again would double-count.
	replaying bool

	// onRefit/onWeightedMerge are the metrics hooks (refit latency and
	// weighted-merge count), invoked while holding mu; nil outside a
	// server.
	onRefit         func(time.Duration)
	onWeightedMerge func()

	// Pending-batch ledger for incremental (answer-at-a-time) merging.
	// While pendBatch is non-nil, the selected batch at the current
	// version is being answered one judgment at a time: pendAns holds the
	// judgments received so far, pendTaskH the batch's H(T) from
	// selection, and pendPost the PROVISIONAL posterior — the committed
	// (round-start) posterior conditioned on the answered prefix in ONE
	// batch-order conditioning pass. Recomputing the provisional from the
	// round start on every partial is what makes the eventual commit
	// bit-identical to a batched merge: when the ledger covers the batch,
	// the provisional IS core.MergeAnswers(roundStart, batch, answers, pc)
	// — the exact call the batched path makes. s.posterior itself never
	// moves until commit, so budget and version advance exactly once.
	pendBatch []int
	pendAns   map[int]bool
	pendTaskH float64
	pendPost  *dist.Joint

	// emit, when set, receives a SessionEvent for every state transition
	// (select, partial, merge, done). It is invoked while HOLDING mu —
	// transitions are published in exactly the order they commit — so the
	// hook must never block (the manager's event hub fans out through
	// bounded non-blocking buffers). Nil for sessions without a manager.
	emit func(ev SessionEvent)

	// tracer, when set, records child spans around select, merge, the
	// partial journal, and every persisted op (whose span duration is
	// dominated by the fsync on durable stores). Nil — direct library use,
	// benchmarks, replay — costs only nil checks on the hot path.
	tracer *trace.Tracer

	// lastAccess is the eviction clock, guarded by mu (updated by every
	// operation through touch).
	lastAccess time.Time

	// retired marks this instance as no longer the session's live one:
	// the manager evicted, unloaded, or deleted it while some handler
	// still held the pointer. Mutating operations refuse with
	// errSessionRetired so the handler re-resolves the ID through the
	// manager — otherwise an orphan instance could commit (and persist!)
	// a merge invisible to the successor instance the map now serves.
	retired bool

	// Persistence. priorRec is the prior exactly as the client sent it
	// (raw, pre-normalization), seed the selector seed, created the
	// creation time — together with the rounds trace they are the
	// session's full durable record. persist, when set, is called with
	// each state transition BEFORE it is committed in memory: a merge is
	// acknowledged only after the store has fsynced it. It is nil for
	// sessions that are not manager-owned (tests, replay).
	priorRec store.Prior
	seed     int64
	created  time.Time
	persist  func(op store.Op) error

	// leaseEpoch is the fencing epoch of the write lease this instance
	// holds, stamped on every persisted op and flushed record so the store
	// can refuse writes from a deposed incarnation with ErrFenced. Set by
	// the manager before the instance is published and immutable after —
	// a new acquisition always builds a new instance. 0 when leasing is
	// disabled.
	leaseEpoch uint64
}

// newSession builds a session; the caller (Manager.Create) has validated
// the request and constructed the prior.
func newSession(id string, prior *dist.Joint, selector core.Selector, selName string, pc float64, k, budget int, now time.Time) *Session {
	return &Session{
		id:           id,
		selector:     selector,
		selName:      selName,
		pc:           pc,
		k:            k,
		budget:       budget,
		posterior:    prior,
		merges:       make(map[uint64]*AnswersResponse),
		mergeWorkers: make(map[uint64]string),
		workerModel:  WorkerModelFixed,
		anonWorker:   DefaultAnonWorker,
		lastAccess:   now,
		created:      now,
	}
}

// DefaultAnonWorker is the worker identity unattributed judgments are
// recorded under when no -anon-worker override is configured.
const DefaultAnonWorker = "anon"

// workerPriorStrength is the pseudo-count of the Beta prior anchoring
// every worker's accuracy estimate at the session's configured pc. Four
// pseudo-observations mean a fresh worker starts exactly at pc and a
// worker with n judgments sits at (4·pc + n·estimate)/(4 + n) — strong
// enough that a handful of lucky agreements cannot catapult anyone to
// 0.99, weak enough that a planted adversary's estimate crosses below an
// honest worker's within a couple of rounds.
const workerPriorStrength = 4.0

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// touch advances the eviction clock; callers hold mu.
func (s *Session) touch(now time.Time) {
	if now.After(s.lastAccess) {
		s.lastAccess = now
	}
}

// idleSince returns the last access time for TTL eviction.
func (s *Session) idleSince() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastAccess
}

// infoLocked snapshots the client-visible state; callers hold mu. While a
// partial answer sequence is in flight the distribution fields reflect the
// provisional posterior, Version stays at the committed version, and
// Pending describes the ledger.
func (s *Session) infoLocked(withRounds bool) SessionInfo {
	post := s.posterior
	if s.pendPost != nil {
		post = s.pendPost
	}
	info := SessionInfo{
		ID:          s.id,
		Version:     s.version,
		N:           post.N(),
		SupportSize: post.SupportSize(),
		Marginals:   append([]float64(nil), post.Marginals()...),
		Entropy:     post.Entropy(),
		Utility:     post.Utility(),
		Spent:       s.spent,
		Budget:      s.budget,
		K:           s.k,
		Pc:          s.pc,
		Selector:    s.selName,
		WorkerModel: s.workerModel,
		Done:        s.done || s.spent >= s.budget,
	}
	if s.pendBatch != nil {
		p := &PendingInfo{
			Version:   s.version,
			Tasks:     append([]int(nil), s.pendBatch...),
			Answered:  []AnswerEvent{},
			Remaining: []int{},
		}
		for _, t := range s.pendBatch {
			if a, ok := s.pendAns[t]; ok {
				p.Answered = append(p.Answered, AnswerEvent{Task: t, Answer: a})
			} else {
				p.Remaining = append(p.Remaining, t)
			}
		}
		info.Pending = p
	}
	if withRounds {
		info.Rounds = append([]RoundInfo(nil), s.rounds...)
	}
	return info
}

// emitLocked publishes a state-transition event; callers hold mu. mutate,
// when non-nil, decorates the event (select batches, redirect owners).
// The event is stamped with the trace id of the request that caused the
// transition, so stream consumers can join a merge to its request chain.
func (s *Session) emitLocked(ctx context.Context, typ string, mutate func(*SessionEvent)) {
	if s.emit == nil {
		return
	}
	ev := SessionEvent{Type: typ, SessionInfo: s.infoLocked(false), TraceID: trace.TraceIDFromContext(ctx)}
	if mutate != nil {
		mutate(&ev)
	}
	s.emit(ev)
}

// persistOp runs the persist hook under a span so the op's durability cost
// (the fsync, on durable stores) shows up in the trace. Callers hold mu.
func (s *Session) persistOp(ctx context.Context, op store.Op) error {
	_, sp := s.tracer.Start(ctx, "persist.append")
	sp.SetAttr("session", s.id)
	sp.SetAttr("kind", string(op.Kind))
	sp.SetAttr("version", op.Version)
	err := s.persist(op)
	sp.SetError(err)
	sp.End()
	return err
}

// withSnapshot runs f with the current client-visible state while holding
// the session mutex. Events are published under this same mutex, so
// nothing can be published between the snapshot f sees and whatever
// registration f performs — the foundation of gapless SSE subscription.
func (s *Session) withSnapshot(now time.Time, f func(info SessionInfo)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return errSessionRetired
	}
	s.touch(now)
	f(s.infoLocked(false))
	return nil
}

// peekInfo returns the state WITHOUT advancing the TTL clock — listing a
// node's sessions must not keep every listed session resident forever.
func (s *Session) peekInfo() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked(false)
}

// Info returns the session state, with the per-round trace when withRounds
// is set.
func (s *Session) Info(now time.Time, withRounds bool) SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch(now)
	return s.infoLocked(withRounds)
}

// selectIntent is the frozen input of one greedy sweep, captured under the
// session mutex by selectPrepare and consumed outside it: the posterior is
// immutable, so the sweep itself needs no lock — which is what lets the
// server coalesce sweeps from different sessions into one batched kernel
// invocation.
type selectIntent struct {
	joint    *dist.Joint
	selector core.Selector
	k        int
	pc       float64
	version  int
}

// selectPrepare is the under-lock front half of a select: fast paths
// (pinned pending batch, done latch, cache hit) return a response
// directly; otherwise it freezes the sweep inputs into a selectIntent for
// the caller to compute against and hand back to selectComplete.
func (s *Session) selectPrepare(now time.Time, kOverride int) (resp *SelectResponse, cached bool, intent selectIntent, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return nil, false, intent, errSessionRetired
	}
	s.touch(now)

	if s.pendBatch != nil {
		// An incremental answer sequence is in flight: the pending batch
		// IS the outstanding selection. It stays pinned (even across a k
		// override) until the ledger commits — swapping batches mid-answer
		// would orphan journaled judgments.
		pinned := SelectResponse{
			Tasks:       append([]int(nil), s.pendBatch...),
			TaskEntropy: s.pendTaskH,
			Version:     s.version,
			Cached:      true,
		}
		return &pinned, true, intent, nil
	}

	k := s.k
	if kOverride > 0 {
		k = kOverride
	}
	if remaining := s.budget - s.spent; k > remaining {
		k = remaining
	}
	if n := s.posterior.N(); k > n {
		k = n
	}
	if k <= 0 || s.done {
		return &SelectResponse{Tasks: []int{}, Version: s.version, Done: true}, false, intent, nil
	}
	if s.sel != nil && s.selVersion == s.version && s.selK == k {
		hit := *s.sel
		hit.Cached = true
		return &hit, true, intent, nil
	}
	return nil, false, selectIntent{
		joint:    s.posterior,
		selector: s.selector,
		k:        k,
		pc:       s.pc,
		version:  s.version,
	}, nil
}

// selectComplete is the under-lock back half: it re-validates the intent
// against the current state and commits the sweep's result. stale means
// the posterior moved (or a partial sequence started) while the sweep ran
// off-lock — the result is discarded and the caller re-prepares. When a
// concurrent request already cached an identical selection for the same
// (version, k), that cache is served instead (the sweep is deterministic,
// so the results are interchangeable).
func (s *Session) selectComplete(ctx context.Context, now time.Time, intent selectIntent, tasks []int, selErr error) (resp *SelectResponse, cached, stale bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return nil, false, false, errSessionRetired
	}
	if selErr != nil {
		return nil, false, false, fmt.Errorf("service: selection: %w", selErr)
	}
	if s.version != intent.version || s.pendBatch != nil || s.done {
		return nil, false, true, nil
	}
	if s.sel != nil && s.selVersion == s.version && s.selK == intent.k {
		hit := *s.sel
		hit.Cached = true
		return &hit, true, false, nil
	}

	resp = &SelectResponse{Tasks: tasks, Version: s.version}
	if len(tasks) == 0 {
		// Theorem 2: no remaining task nets positive utility. Latch so
		// later selects and Info report completion without re-sweeping.
		s.done = true
		resp.Done = true
		if s.persist != nil {
			// Best-effort: the latch is derived state — a restarted
			// daemon re-derives it with one re-sweep — so a store
			// hiccup must not fail the read. The persist hook records
			// the failure in the store metrics.
			_ = s.persistOp(ctx, store.Op{Kind: store.OpDone, Version: s.version, Epoch: s.leaseEpoch, Time: now})
		}
		s.emitLocked(ctx, EventDone, nil)
	} else {
		h, err := core.TaskEntropy(s.posterior, tasks, s.pc)
		if err != nil {
			return nil, false, false, err
		}
		resp.TaskEntropy = h
	}
	s.sel = resp
	s.selVersion = s.version
	s.selK = intent.k
	if len(tasks) > 0 {
		s.emitLocked(ctx, EventSelect, func(ev *SessionEvent) {
			ev.Tasks = append([]int(nil), tasks...)
		})
	}
	return resp, false, false, nil
}

// Select returns the next task batch against the current posterior. kOverride
// > 0 replaces the session's per-round k for this batch. The batch size is
// clamped to the remaining budget; an empty batch (Done=true) means the
// budget is spent or nothing uncertain remains.
//
// The selection is cached keyed on (posterior version, effective k):
// repeating the call without an intervening merge returns the identical
// batch with Cached=true instead of re-running the greedy sweep.
//
// The greedy sweep itself runs outside the session mutex against the
// immutable posterior the intent froze; a merge landing mid-sweep moves
// the version and the result is discarded and recomputed, so a committed
// selection always matches its response's Version.
func (s *Session) Select(ctx context.Context, now time.Time, kOverride int) (resp *SelectResponse, cached bool, err error) {
	if s.tracer != nil {
		var sp *trace.Span
		ctx, sp = s.tracer.Start(ctx, "session.select")
		sp.SetAttr("session", s.id)
		defer func() {
			if resp != nil {
				sp.SetAttr("version", resp.Version)
				sp.SetAttr("tasks", len(resp.Tasks))
			}
			sp.SetAttr("cached", cached)
			sp.SetError(err)
			sp.End()
		}()
	}
	for {
		resp, cached, intent, err := s.selectPrepare(now, kOverride)
		if resp != nil || err != nil {
			return resp, cached, err
		}
		tasks, selErr := intent.selector.Select(intent.joint, intent.k, intent.pc)
		done, hit, stale, err := s.selectComplete(ctx, now, intent, tasks, selErr)
		if stale {
			continue
		}
		return done, hit, err
	}
}

// persistError maps a persist failure for the caller: a fenced write
// surfaces as *FencedError — the session has a new owner, the handler
// retires this instance and redirects — while anything else is ErrStore
// (the op was NOT applied; persistence happens before the in-memory
// commit, so the client can safely retry).
func persistError(id string, err error) error {
	var fe *store.FencedError
	if errors.As(err, &fe) {
		return &FencedError{ID: id, Owner: fe.Lease.Owner}
	}
	return fmt.Errorf("%w: %v", ErrStore, err)
}

// answerSetHash fingerprints an answer set (tasks, answers, version) for
// the idempotency log. FNV-1a over the canonical byte rendering; collisions
// would only conflate two retries into one replay, never corrupt state.
func answerSetHash(version int, tasks []int, answers []bool) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(version))
	for i, t := range tasks {
		put(uint64(t))
		if answers[i] {
			put(1)
		} else {
			put(0)
		}
	}
	return h.Sum64()
}

// Merge applies a crowd answer set to the posterior (Equation 3) and
// advances the version. It is idempotent by answer-set hash: an answer set
// that was already applied — same tasks, same answers, same referenced
// version — returns the recorded response with Merged=false instead of
// double-counting budget or conditioning twice, which makes network
// retries of POST …/answers safe.
//
// Version semantics: when the request carries a version it must either be
// the current one (the merge applies) or match an already-applied set (the
// recorded response replays); anything else is ErrVersionConflict. When
// the version is omitted, a duplicate of any applied answer set is treated
// as a retry; clients that intend to submit an identical answer set twice
// (possible when the selector re-picks the same tasks and the crowd answers
// identically) must thread the version through to disambiguate.
//
// Partial requests (and any request arriving while a partial sequence is
// in flight) take the incremental path: judgments accumulate against the
// pending selected batch, each journaled through the store before it is
// acknowledged, and the batch commits — spending budget and advancing the
// version exactly once — when the ledger covers the batch. Retried
// prefixes replay idempotently, before and after the commit.
func (s *Session) Merge(ctx context.Context, now time.Time, req *AnswersRequest) (resp *AnswersResponse, err error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	tasks, answers, workers, sources, attributed := req.flatten(s.anonWorker)
	if s.tracer != nil {
		var sp *trace.Span
		ctx, sp = s.tracer.Start(ctx, "session.merge")
		sp.SetAttr("session", s.id)
		sp.SetAttr("tasks", len(tasks))
		sp.SetAttr("partial", req.Partial)
		sp.SetAttr("attributed", attributed)
		defer func() {
			if resp != nil {
				sp.SetAttr("merged", resp.Merged)
				sp.SetAttr("version", resp.Version)
			}
			sp.SetError(err)
			sp.End()
		}()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return nil, errSessionRetired
	}
	s.touch(now)
	// Under em/dawid-skene every judgment is an observation, so legacy
	// parallel-array submissions are attributed to the anonymous worker;
	// under fixed, unattributed submissions stay worker-less (and journal
	// no observation — their durable log is byte-identical to before
	// worker models existed).
	if workers == nil && s.workerModel != WorkerModelFixed {
		workers = make([]string, len(tasks))
		for i := range workers {
			workers[i] = s.anonWorker
		}
	}

	if req.Version != nil {
		key := answerSetHash(*req.Version, tasks, answers)
		if prev, ok := s.merges[key]; ok {
			if err := s.checkAttributionLocked(key, workers, attributed); err != nil {
				return nil, err
			}
			replay := *prev
			replay.Merged = false
			return &replay, nil
		}
	}
	if req.Partial || s.pendBatch != nil {
		return s.mergePartialLocked(ctx, now, req, tasks, answers, workers, sources, attributed)
	}
	if req.Version != nil {
		if *req.Version != s.version {
			return nil, ErrVersionConflict
		}
	} else {
		// No version: scan for a content match against any applied set.
		for v := 0; v < s.version; v++ {
			key := answerSetHash(v, tasks, answers)
			if prev, ok := s.merges[key]; ok {
				if err := s.checkAttributionLocked(key, workers, attributed); err != nil {
					return nil, err
				}
				replay := *prev
				replay.Merged = false
				return &replay, nil
			}
		}
	}

	if s.spent+len(tasks) > s.budget {
		return nil, fmt.Errorf("%w: %d spent of %d, %d more requested",
			ErrBudgetExhausted, s.spent, s.budget, len(tasks))
	}
	// In the normal select-then-answer flow the batch's H(T) was already
	// computed by Select against this same posterior; reuse it rather
	// than paying the entropy kernel a second time inside the critical
	// section. Out-of-band answer sets still compute it fresh.
	var taskH float64
	if s.sel != nil && s.selVersion == s.version && slices.Equal(s.sel.Tasks, tasks) {
		taskH = s.sel.TaskEntropy
	} else {
		var err error
		taskH, err = core.TaskEntropy(s.posterior, tasks, s.pc)
		if err != nil {
			return nil, err
		}
	}
	updated, err := s.conditionLocked(tasks, answers, workers)
	if err != nil {
		return nil, fmt.Errorf("service: merge: %w", err)
	}
	if err := s.observeLocked(ctx, now, tasks, answers, workers, sources); err != nil {
		return nil, err
	}
	return s.commitLocked(ctx, now, tasks, answers, taskH, updated, false, workers)
}

// canonicalWorkers renders a worker attribution for conflict comparison.
func canonicalWorkers(workers []string) string {
	return strings.Join(workers, "\x1f")
}

// checkAttributionLocked guards an idempotent replay of a committed
// answer set: a retry carrying explicit judgments must attribute them to
// the workers the original commit journaled. Legacy-form retries (no
// judgment attribution to contradict) always pass, as do retries of
// rounds that journaled no observations.
func (s *Session) checkAttributionLocked(key uint64, workers []string, attributed bool) error {
	if !attributed {
		return nil
	}
	rec, ok := s.mergeWorkers[key]
	if !ok || rec == canonicalWorkers(workers) {
		return nil
	}
	return fmt.Errorf("%w: committed attribution %q", ErrAttributionConflict,
		strings.ReplaceAll(rec, "\x1f", ","))
}

// observeLocked journals a judgment set as one observe op and accumulates
// it in memory, before the merge or partial op that consumes it — so
// replay always sees a round's observations ahead of its commit.
// Conditioning runs before observe, so an answer set the posterior
// rejects as impossible journals nothing.
// A nil workers slice (unattributed judgments on a fixed session) records
// nothing. A retry of an already-journaled set (the tail of the log at
// the current version matches exactly) is skipped, so a client retrying
// after a failed merge persist cannot double-record its judgments.
// During record replay the whole method is a no-op: restoreSession
// re-seeds the log from the record itself.
func (s *Session) observeLocked(ctx context.Context, now time.Time, tasks []int, answers []bool, workers, sources []string) error {
	if workers == nil || s.replaying {
		return nil
	}
	if s.observationsTailMatchLocked(tasks, answers, workers) {
		return nil
	}
	if s.persist != nil {
		op := store.Op{
			Kind:    store.OpObserve,
			Version: s.version,
			Seq:     len(s.observations),
			Tasks:   append([]int(nil), tasks...),
			Answers: append([]bool(nil), answers...),
			Workers: append([]string(nil), workers...),
			Epoch:   s.leaseEpoch,
			Time:    now,
		}
		if sources != nil {
			op.Sources = append([]string(nil), sources...)
		}
		if err := s.persistOp(ctx, op); err != nil {
			return persistError(s.id, err)
		}
	}
	for i, t := range tasks {
		o := store.Observation{
			Task:    t,
			Answer:  answers[i],
			Worker:  workers[i],
			Version: s.version,
			Time:    now,
		}
		if sources != nil {
			o.Source = sources[i]
		}
		s.observations = append(s.observations, o)
	}
	return nil
}

// observationsTailMatchLocked reports whether the observation log already
// ends with exactly this judgment set at the current version — the
// signature of a retry whose observe op landed but whose merge op did not.
func (s *Session) observationsTailMatchLocked(tasks []int, answers []bool, workers []string) bool {
	n := len(tasks)
	if len(s.observations) < n {
		return false
	}
	tail := s.observations[len(s.observations)-n:]
	for i, o := range tail {
		if o.Version != s.version || o.Task != tasks[i] || o.Answer != answers[i] || o.Worker != workers[i] {
			return false
		}
	}
	return true
}

// workerChannelLocked returns the smoothed (sensitivity, specificity)
// channel for a worker, falling back to the session's scalar pc for
// workers the last refit did not cover (including everyone, before the
// first refit).
func (s *Session) workerChannelLocked(w string) (sens, spec float64) {
	if sn, ok := s.workerSens[w]; ok {
		return sn, s.workerSpec[w]
	}
	return s.pc, s.pc
}

// conditionLocked conditions the committed posterior on one judgment set.
// Fixed sessions — and em/dawid-skene sessions before their first refit —
// take the scalar-pc path; refit sessions condition each judgment on its
// worker's current smoothed channel. The pre-refit equivalence is exact,
// not approximate: with every estimate pinned at pc the weighted
// conditioning delegates to the scalar kernel inside dist, so a fresh
// em session is bit-identical to a fixed one until evidence arrives.
func (s *Session) conditionLocked(tasks []int, answers []bool, workers []string) (*dist.Joint, error) {
	if s.workerModel == WorkerModelFixed || s.refits == 0 || workers == nil {
		return core.MergeAnswers(s.posterior, tasks, answers, s.pc)
	}
	// The conditioning kernel reads the channel vectors before returning
	// and the posterior retains no reference to them, so the session-owned
	// buffers recycle across merges.
	sens := s.sensBuf[:0]
	spec := s.specBuf[:0]
	for _, w := range workers {
		sn, sp := s.workerChannelLocked(w)
		sens = append(sens, sn)
		spec = append(spec, sp)
	}
	s.sensBuf, s.specBuf = sens, spec
	if s.onWeightedMerge != nil {
		s.onWeightedMerge()
	}
	return core.MergeAnswersWeighted(s.posterior, tasks, answers, sens, spec)
}

// refitLocked re-estimates every worker's accuracy from the accumulated
// observation log; callers hold mu and have just committed a merge. The
// raw estimates (symmetric EM or Dawid–Skene, seeded from the session
// seed so recovery replays the identical arithmetic) are shrunk toward
// the configured pc by a Beta prior of strength workerPriorStrength. An
// estimator failure keeps the previous estimates — the merge that
// triggered the refit is already committed and must not be unwound.
func (s *Session) refitLocked(ctx context.Context, _ time.Time) {
	if s.workerModel != WorkerModelEM && s.workerModel != WorkerModelDawidSkene {
		return
	}
	if len(s.observations) == 0 {
		return
	}
	start := time.Now()
	answers := make([]crowd.Answer, len(s.observations))
	support := make(map[string]int)
	for i, o := range s.observations {
		answers[i] = crowd.Answer{Fact: o.Task, Value: o.Answer, Worker: o.Worker}
		support[o.Worker]++
	}
	var rawSens, rawSpec map[string]float64
	opts := crowd.EMOptions{Seed: s.seed}
	switch s.workerModel {
	case WorkerModelEM:
		est, err := crowd.EstimateEM(answers, opts)
		if err != nil {
			return
		}
		rawSens, rawSpec = est.WorkerAccuracy, est.WorkerAccuracy
	case WorkerModelDawidSkene:
		est, err := crowd.EstimateDawidSkene(answers, opts)
		if err != nil {
			return
		}
		rawSens, rawSpec = est.Sensitivity, est.Specificity
	}
	s.workerSens = make(map[string]float64, len(rawSens))
	s.workerSpec = make(map[string]float64, len(rawSens))
	s.workerRaw = make(map[string]float64, len(rawSens))
	for w, sn := range rawSens {
		n := float64(support[w])
		sp := rawSpec[w]
		s.workerSens[w] = (workerPriorStrength*s.pc + n*sn) / (workerPriorStrength + n)
		s.workerSpec[w] = (workerPriorStrength*s.pc + n*sp) / (workerPriorStrength + n)
		s.workerRaw[w] = (sn + sp) / 2
	}
	s.refits++
	if s.onRefit != nil {
		s.onRefit(time.Since(start))
	}
	s.emitLocked(ctx, EventRefit, func(ev *SessionEvent) { ev.Refits = s.refits })
}

// commitLocked durably applies one complete answer set and advances the
// version; callers hold mu and have already conditioned the posterior.
// Persist-then-commit: the op is durable (fsynced, for durable stores)
// before any in-memory state changes, so an acknowledged merge can never
// be lost — and a failed persist leaves the session exactly as it was,
// safe for the client to retry. workers, when non-nil, is the judgment
// attribution the round's observations were journaled under; it is
// recorded against the idempotency entry so a conflicting re-attribution
// on retry is refused, and it triggers the post-commit refit.
func (s *Session) commitLocked(ctx context.Context, now time.Time, tasks []int, answers []bool, taskH float64, updated *dist.Joint, partial bool, workers []string) (*AnswersResponse, error) {
	if s.spent+len(tasks) > s.budget {
		return nil, fmt.Errorf("%w: %d spent of %d, %d more requested",
			ErrBudgetExhausted, s.spent, s.budget, len(tasks))
	}
	mergedAt := s.version
	if s.persist != nil {
		op := store.Op{
			Kind:    store.OpMerge,
			Version: mergedAt,
			Tasks:   append([]int(nil), tasks...),
			Answers: append([]bool(nil), answers...),
			Epoch:   s.leaseEpoch,
			Time:    now,
		}
		if err := s.persistOp(ctx, op); err != nil {
			return nil, persistError(s.id, err)
		}
	}
	s.posterior = updated
	s.version++
	s.spent += len(tasks)
	s.sel = nil    // selection cache is bound to the previous posterior
	s.done = false // the new posterior may be uncertain again; re-derive
	s.pendBatch, s.pendAns, s.pendPost, s.pendTaskH = nil, nil, nil, 0
	s.pendWorkers = nil
	s.rounds = append(s.rounds, RoundInfo{
		Round:   s.version,
		Tasks:   append([]int(nil), tasks...),
		Answers: append([]bool(nil), answers...),
		CumCost: s.spent,
		Entropy: updated.Entropy(),
		TaskH:   taskH,
	})

	resp := &AnswersResponse{SessionInfo: s.infoLocked(false), Merged: true, Partial: partial}
	key := answerSetHash(mergedAt, tasks, answers)
	s.merges[key] = resp
	if workers != nil {
		s.mergeWorkers[key] = canonicalWorkers(workers)
	}
	s.emitLocked(ctx, EventMerge, nil)
	s.refitLocked(ctx, now)
	return resp, nil
}

// mergePartialLocked is the incremental answer path; callers hold mu.
//
// The bit-identity contract: the ledger never conditions the committed
// posterior step by step. Every partial recomputes the provisional
// posterior as ONE batch conditioning of the answered prefix (in batch
// order) against the round-start posterior, so when the final judgment
// arrives the provisional is literally core.MergeAnswers(roundStart,
// batch, answers, pc) — the same call, on the same inputs, the batched
// path makes — and the commit reuses it. Budget is spent only inside that
// commit, so no retry of any prefix can double-spend.
func (s *Session) mergePartialLocked(ctx context.Context, now time.Time, req *AnswersRequest, tasks []int, answers []bool, workers, sources []string, attributed bool) (*AnswersResponse, error) {
	if req.Version != nil {
		if *req.Version > s.version {
			return nil, ErrVersionConflict
		}
		if *req.Version < s.version {
			// The batch these judgments belong to already committed. A
			// retried prefix replays idempotently iff every judgment
			// matches the committed round; anything else is a conflict.
			return s.replayCommittedPartialLocked(*req.Version, tasks, answers)
		}
	}

	batch := s.pendBatch
	if batch == nil {
		// First partial of a sequence: pin the outstanding selection.
		if s.sel == nil || s.selVersion != s.version || len(s.sel.Tasks) == 0 {
			return nil, ErrNoPendingBatch
		}
		batch = s.sel.Tasks
	}

	// Validate the judgments against the batch and the ledger before
	// touching any state.
	var newTasks []int
	var newAns []bool
	var newWorkers, newSources []string
	for i, t := range tasks {
		if !slices.Contains(batch, t) {
			return nil, fmt.Errorf("%w: task %d", ErrNotInBatch, t)
		}
		if a, ok := s.pendAns[t]; ok {
			if a != answers[i] {
				return nil, fmt.Errorf("%w: task %d", ErrAnswerConflict, t)
			}
			// An attributed retry of a journaled judgment must carry the
			// attribution it was journaled under.
			if attributed {
				if rec, ok := s.pendWorkers[t]; ok && rec != workers[i] {
					return nil, fmt.Errorf("%w: task %d journaled for worker %q", ErrAttributionConflict, t, rec)
				}
			}
			continue // idempotent duplicate of a journaled judgment
		}
		if j := slices.Index(newTasks, t); j >= 0 {
			if newAns[j] != answers[i] {
				return nil, fmt.Errorf("%w: task %d (twice in one request)", ErrAnswerConflict, t)
			}
			continue
		}
		newTasks = append(newTasks, t)
		newAns = append(newAns, answers[i])
		if workers != nil {
			newWorkers = append(newWorkers, workers[i])
			if sources != nil {
				newSources = append(newSources, sources[i])
			}
		}
	}
	if len(newTasks) == 0 {
		// Pure replay of already-journaled judgments.
		return &AnswersResponse{SessionInfo: s.infoLocked(false), Merged: false, Partial: true}, nil
	}
	if newWorkers != nil && newSources == nil && sources != nil {
		newSources = make([]string, len(newWorkers))
	}

	if s.pendBatch == nil {
		s.pendBatch = append([]int(nil), batch...)
		s.pendAns = make(map[int]bool, len(batch))
		s.pendTaskH = s.sel.TaskEntropy
	}
	if s.pendWorkers == nil {
		s.pendWorkers = make(map[int]string, len(batch))
	}

	// The provisional posterior: one batch conditioning of the answered
	// prefix, in batch order, against the round-start posterior. Worker
	// attribution rides along so em/dawid-skene sessions condition each
	// judgment on its worker's channel; unattributed judgments on fixed
	// sessions leave prefW nil and take the scalar path.
	prefT := make([]int, 0, len(s.pendAns)+len(newTasks))
	prefA := make([]bool, 0, len(s.pendAns)+len(newTasks))
	var prefW []string
	withWorkers := workers != nil || len(s.pendWorkers) > 0
	for _, t := range s.pendBatch {
		a, journaled := s.pendAns[t]
		j := -1
		if !journaled {
			if j = slices.Index(newTasks, t); j < 0 {
				continue
			}
			a = newAns[j]
		}
		prefT = append(prefT, t)
		prefA = append(prefA, a)
		if withWorkers {
			w := ""
			if journaled {
				w = s.pendWorkers[t]
			} else if newWorkers != nil {
				w = newWorkers[j]
			}
			if w == "" {
				w = s.anonWorker
			}
			prefW = append(prefW, w)
		}
	}
	updated, err := s.conditionLocked(prefT, prefA, prefW)
	if err != nil {
		return nil, fmt.Errorf("service: merge: %w", err)
	}

	if err := s.observeLocked(ctx, now, newTasks, newAns, newWorkers, newSources); err != nil {
		return nil, err
	}

	if len(prefT) == len(s.pendBatch) {
		// The ledger now covers the batch: commit. The completing
		// judgments are journaled as the batch's OpMerge (inside the
		// commit), never as a partial op — the durable ledger stays a
		// strict subset of its batch, so crash recovery always re-enters
		// the incremental path instead of committing mid-replay.
		resp, err := s.commitLocked(ctx, now, prefT, prefA, s.pendTaskH, updated, true, prefW)
		if err != nil {
			return nil, err
		}
		return resp, nil
	}

	// Journal-then-commit, same discipline as merges: the judgments are
	// durable before they are acknowledged or visible.
	if s.persist != nil {
		op := store.Op{
			Kind:    store.OpPartial,
			Version: s.version,
			Tasks:   append([]int(nil), newTasks...),
			Answers: append([]bool(nil), newAns...),
			Batch:   append([]int(nil), s.pendBatch...),
			Epoch:   s.leaseEpoch,
			Time:    now,
		}
		if err := s.persistOp(ctx, op); err != nil {
			return nil, persistError(s.id, err)
		}
	}
	for i, t := range newTasks {
		s.pendAns[t] = newAns[i]
		if newWorkers != nil {
			s.pendWorkers[t] = newWorkers[i]
		}
	}
	s.pendPost = updated
	resp := &AnswersResponse{SessionInfo: s.infoLocked(false), Merged: false, Partial: true}
	s.emitLocked(ctx, EventPartial, nil)
	return resp, nil
}

// replayCommittedPartialLocked serves a retried partial prefix whose batch
// has already committed: idempotent (Merged=false, no spend) when every
// judgment matches the committed round at that version, ErrVersionConflict
// otherwise. The response carries the CURRENT state — the prefix's
// provisional posteriors are gone once the batch commits.
func (s *Session) replayCommittedPartialLocked(version int, tasks []int, answers []bool) (*AnswersResponse, error) {
	if version < 0 || version >= len(s.rounds) {
		return nil, ErrVersionConflict
	}
	r := s.rounds[version] // the round committed FROM that version
	for i, t := range tasks {
		j := slices.Index(r.Tasks, t)
		if j < 0 || r.Answers[j] != answers[i] {
			return nil, ErrVersionConflict
		}
	}
	return &AnswersResponse{SessionInfo: s.infoLocked(false), Merged: false, Partial: true}, nil
}

// Posterior returns the current posterior distribution (immutable; safe to
// share).
func (s *Session) Posterior() *dist.Joint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.posterior
}

// Calibration reports how well the session's per-task marginals are
// calibrated, binned over [0,1], plus the per-worker accuracy estimates
// behind the current posterior. True labels are unknown in production, so
// the report scores against the pseudo-gold induced by the committed
// posterior itself (the MAP label per task): perfect calibration then
// means "the marginals are as confident as their own argmax labels
// warrant", and per-worker Correct counts agreement with that consensus.
func (s *Session) Calibration(now time.Time, nBins int) (*CalibrationResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return nil, errSessionRetired
	}
	s.touch(now)
	marginals := s.posterior.Marginals()
	gold := make([]bool, len(marginals))
	for i, p := range marginals {
		gold[i] = p >= 0.5
	}
	inst := &worlds.Instance{Statements: make([]bookdata.Statement, len(marginals)), Gold: gold}
	cal, err := eval.CalibrationReport([]*worlds.Instance{inst}, []*dist.Joint{s.posterior}, nBins)
	if err != nil {
		return nil, fmt.Errorf("service: calibration: %w", err)
	}
	resp := &CalibrationResponse{
		ID:           s.id,
		Version:      s.version,
		WorkerModel:  s.workerModel,
		Refits:       s.refits,
		Observations: len(s.observations),
		Bins:         make([]CalibrationBinInfo, len(cal.Bins)),
		ECE:          cal.ECE,
		Brier:        cal.Brier,
		Total:        cal.Total,
		Workers:      s.workerInfosLocked(gold),
	}
	for i, b := range cal.Bins {
		resp.Bins[i] = CalibrationBinInfo{
			Lo: b.Lo, Hi: b.Hi, Count: b.Count,
			MeanPredicted: b.MeanPredicted, EmpiricalRate: b.EmpiricalRate,
		}
	}
	return resp, nil
}

// workerInfosLocked builds the per-worker view: support and consensus
// agreement from the observation log, the smoothed channel estimate the
// next weighted merge will use, and a Wilson interval on the agreement
// rate. gold is the pseudo-gold labeling from the committed posterior;
// callers hold mu.
func (s *Session) workerInfosLocked(gold []bool) []WorkerInfo {
	type tally struct{ support, correct, trues int }
	tallies := make(map[string]*tally)
	for _, o := range s.observations {
		t := tallies[o.Worker]
		if t == nil {
			t = &tally{}
			tallies[o.Worker] = t
		}
		t.support++
		if o.Answer {
			t.trues++
		}
		if o.Task >= 0 && o.Task < len(gold) && o.Answer == gold[o.Task] {
			t.correct++
		}
	}
	infos := make([]WorkerInfo, 0, len(tallies))
	for w, t := range tallies {
		sens, spec := s.workerChannelLocked(w)
		info := WorkerInfo{
			Worker:   w,
			Accuracy: (sens + spec) / 2,
			Raw:      s.pc,
			Bias:     0.5,
			Support:  t.support,
			Correct:  t.correct,
		}
		if raw, ok := s.workerRaw[w]; ok {
			info.Raw = raw
		}
		if t.support > 0 {
			info.Bias = float64(t.trues) / float64(t.support)
		}
		info.WilsonLo, info.WilsonHi = crowd.WilsonInterval(t.correct, t.support)
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Worker < infos[j].Worker })
	return infos
}

// WorkerStats returns the session's per-worker view without touching the
// TTL clock — the fleet aggregation sweeping every resident session must
// not keep them all alive forever.
func (s *Session) WorkerStats() []WorkerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	marginals := s.posterior.Marginals()
	gold := make([]bool, len(marginals))
	for i, p := range marginals {
		gold[i] = p >= 0.5
	}
	return s.workerInfosLocked(gold)
}

// record snapshots the session's full durable state: creation parameters
// plus the applied merge history (the rounds trace IS the op log). The
// posterior itself is deliberately not serialized — recovery replays the
// ops through the same conditioning arithmetic, which is what makes a
// restored posterior bit-identical rather than merely close.
func (s *Session) record() *store.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recordLocked()
}

// recordLocked is record for callers already holding mu.
func (s *Session) recordLocked() *store.Record {
	rec := &store.Record{
		ID:         s.id,
		Selector:   s.selName,
		Pc:         s.pc,
		K:          s.k,
		Budget:     s.budget,
		Seed:       s.seed,
		Prior:      s.priorRec,
		Created:    s.created,
		LastAccess: s.lastAccess,
		Done:       s.done,
		LeaseEpoch: s.leaseEpoch,
	}
	if s.workerModel != WorkerModelFixed {
		// Recorded only when it carries information: a fixed session's
		// record stays byte-identical to one written before worker models
		// existed.
		rec.WorkerModel = s.workerModel
	}
	if len(s.observations) > 0 {
		rec.Observations = append([]store.Observation(nil), s.observations...)
	}
	rec.Ops = make([]store.Op, len(s.rounds))
	for i, r := range s.rounds {
		rec.Ops[i] = store.Op{
			Kind:    store.OpMerge,
			Version: r.Round - 1, // Round is 1-based; the op version is the pre-merge version
			Tasks:   append([]int(nil), r.Tasks...),
			Answers: append([]bool(nil), r.Answers...),
		}
	}
	if s.pendBatch != nil {
		rec.PendingBatch = append([]int(nil), s.pendBatch...)
		for _, t := range s.pendBatch {
			if a, ok := s.pendAns[t]; ok {
				rec.PendingTasks = append(rec.PendingTasks, t)
				rec.PendingAnswers = append(rec.PendingAnswers, a)
			}
		}
	}
	return rec
}

// flush writes the session's full record to the store while HOLDING the
// session mutex. The mutex matters: store.Put truncates the session's op
// log, so a concurrent Merge (which appends to that log before committing)
// slipping between the record snapshot and the Put could have its
// acknowledged, fsynced op wiped. Serializing flush against the state
// machine makes that interleaving impossible.
func (s *Session) flush(st store.SessionStore) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return st.Put(s.recordLocked())
}

// retire marks this instance dead for mutations (see the retired field).
func (s *Session) retire() {
	s.mu.Lock()
	s.retired = true
	s.mu.Unlock()
}

// retireAndFlush atomically flushes the record and retires the instance:
// no merge can land on this instance after the flushed snapshot, so the
// snapshot plus the store's log is always the session's complete history.
// The instance is retired even when the flush fails — it is leaving the
// manager's map either way, and its merges are already in the op log.
func (s *Session) retireAndFlush(st store.SessionStore) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := st.Put(s.recordLocked())
	s.retired = true
	return err
}

// restoreSession rebuilds a live session from its durable record by
// replaying every merge against the reconstructed prior. Both steps run
// the exact code paths that produced the original state — dist.Independent
// or dist.New for the prior, Session.Merge for each op — so the recovered
// posterior, version, budget accounting, rounds trace, and idempotency log
// match the pre-crash session bit for bit. Random selectors are re-seeded
// from the recorded seed; their stream position within the session is not
// recovered (selection is a fresh draw after restart, which is sound: no
// batch was outstanding durably).
//
// Worker-model sessions additionally replay their observation log in
// journal order: before the merge op at version v replays, every recorded
// observation with Version <= v is re-seeded, so the refit that ran at
// each pre-crash commit reruns over the identical evidence — seeded by the
// same session seed — and the recovered worker estimates and weighted
// posterior match bit for bit too. The replaying flag keeps the merge
// path from appending those observations a second time.
func restoreSession(rec *store.Record, anonWorker string, now time.Time) (*Session, error) {
	var prior *dist.Joint
	var err error
	switch {
	case len(rec.Prior.Marginals) > 0:
		prior, err = dist.Independent(rec.Prior.Marginals)
	case len(rec.Prior.Worlds) > 0:
		ws := make([]dist.World, len(rec.Prior.Worlds))
		for i, w := range rec.Prior.Worlds {
			ws[i] = dist.World(w)
		}
		prior, err = dist.New(rec.Prior.N, ws, rec.Prior.Probs)
	default:
		err = fmt.Errorf("record has no prior")
	}
	if err != nil {
		return nil, fmt.Errorf("service: restoring session %s: %w", rec.ID, err)
	}
	selector, err := eval.NewSelector(eval.SelectorKind(rec.Selector), rec.Seed)
	if err != nil {
		return nil, fmt.Errorf("service: restoring session %s: %w", rec.ID, err)
	}
	// newSession stamps lastAccess = now deliberately: loading IS an
	// access, so the TTL clock restarts rather than resuming from the
	// recorded LastAccess (which would evict a just-recovered session on
	// its next sweep). The persisted LastAccess exists for operators
	// inspecting records on disk, not for the live eviction clock.
	s := newSession(rec.ID, prior, selector, rec.Selector, rec.Pc, rec.K, rec.Budget, now)
	s.priorRec = rec.Prior
	s.seed = rec.Seed
	s.created = rec.Created
	if rec.WorkerModel != "" {
		s.workerModel = rec.WorkerModel
	}
	if anonWorker != "" {
		s.anonWorker = anonWorker
	}
	s.replaying = true
	// persist stays nil during replay: the ops are already durable (and the
	// tracer is nil, so replayed merges produce no spans — the adoption
	// span in loadFromStore covers the whole replay instead).
	obsIdx := 0
	seedObservations := func(upTo int) {
		for obsIdx < len(rec.Observations) && rec.Observations[obsIdx].Version <= upTo {
			s.observations = append(s.observations, rec.Observations[obsIdx])
			obsIdx++
		}
	}
	for _, op := range rec.Ops {
		v := op.Version
		// The round's observations were journaled before its merge, so they
		// re-seed first: the refit this replayed commit triggers sees the
		// same evidence the pre-crash one did.
		s.mu.Lock()
		seedObservations(v)
		req := &AnswersRequest{Version: &v}
		if s.workerModel != WorkerModelFixed {
			// Replay through the judgments form so the weighted conditioning
			// sees each judgment's recorded attribution, not the anonymous
			// fallback the legacy form would apply.
			req.Judgments = replayJudgments(op.Tasks, op.Answers, s.observations, v, s.anonWorker)
		} else {
			req.Tasks, req.Answers = op.Tasks, op.Answers
		}
		s.mu.Unlock()
		if _, err := s.Merge(context.Background(), now, req); err != nil {
			return nil, fmt.Errorf("service: restoring session %s: replaying op %d: %w", rec.ID, v, err)
		}
	}
	s.mu.Lock()
	seedObservations(s.version)
	s.done = rec.Done
	s.mu.Unlock()
	if len(rec.PendingBatch) > 0 {
		// A partial answer sequence was in flight at the crash. Re-pin
		// the recorded batch as the outstanding selection (TaskEntropy is
		// deterministic in the posterior, so recomputing it reproduces
		// the pre-crash value), then replay the journaled judgments
		// through the same partial path that first recorded them — the
		// provisional posterior comes back bit-identical.
		s.mu.Lock()
		taskH, err := core.TaskEntropy(s.posterior, rec.PendingBatch, s.pc)
		if err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("service: restoring session %s: pending batch: %w", rec.ID, err)
		}
		s.sel = &SelectResponse{
			Tasks:       append([]int(nil), rec.PendingBatch...),
			TaskEntropy: taskH,
			Version:     s.version,
		}
		s.selVersion = s.version
		s.selK = len(rec.PendingBatch)
		v := s.version
		s.mu.Unlock()
		if len(rec.PendingTasks) > 0 {
			req := &AnswersRequest{Version: &v, Partial: true}
			if s.workerModel != WorkerModelFixed {
				s.mu.Lock()
				req.Judgments = replayJudgments(rec.PendingTasks, rec.PendingAnswers, s.observations, v, s.anonWorker)
				s.mu.Unlock()
			} else {
				req.Tasks, req.Answers = rec.PendingTasks, rec.PendingAnswers
			}
			if _, err := s.Merge(context.Background(), now, req); err != nil {
				return nil, fmt.Errorf("service: restoring session %s: replaying pending ledger: %w", rec.ID, err)
			}
		}
	}
	s.mu.Lock()
	s.replaying = false
	s.mu.Unlock()
	return s, nil
}

// replayJudgments rebuilds the judgments form for a replayed answer set
// from the observation log: each task takes the worker of the last
// observation journaled for it at that version (retried observe ops land
// last, so the latest entry is the one whose commit succeeded), falling
// back to the anonymous worker for tasks the log does not cover.
func replayJudgments(tasks []int, answers []bool, observations []store.Observation, version int, anon string) []Judgment {
	byTask := make(map[int]store.Observation, len(tasks))
	for _, o := range observations {
		if o.Version == version {
			byTask[o.Task] = o
		}
	}
	js := make([]Judgment, len(tasks))
	for i, t := range tasks {
		js[i] = Judgment{Task: t, Answer: answers[i], Worker: anon}
		if o, ok := byTask[t]; ok && o.Answer == answers[i] {
			js[i].Worker = o.Worker
			js[i].Source = o.Source
		}
	}
	return js
}
