package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sync"
	"time"

	"crowdfusion/internal/core"
	"crowdfusion/internal/dist"
)

// State machine errors, mapped to HTTP statuses by the server layer.
var (
	// ErrVersionConflict is returned when an answer set references a
	// posterior version that is neither current nor a recognized retry —
	// the client lost a race with another merge and must re-select.
	ErrVersionConflict = errors.New("service: answer set references a stale posterior version; re-select")
	// ErrBudgetExhausted is returned when a merge would spend more tasks
	// than the session budget has left.
	ErrBudgetExhausted = errors.New("service: session budget exhausted")
)

// Session is one refinement loop: a posterior distribution refined round by
// round through the select → await → merge state machine.
//
// Every operation runs under one per-session mutex, so concurrent requests
// against the same session serialize: two merges can never interleave, a
// select always sees a complete posterior, and the version counter names
// each posterior unambiguously. Cross-session requests share nothing and
// run fully in parallel.
type Session struct {
	id       string
	selector core.Selector
	selName  string
	pc       float64
	k        int
	budget   int

	mu        sync.Mutex
	posterior *dist.Joint
	version   int  // number of merges applied
	spent     int  // tasks asked (accounted at merge time)
	done      bool // latched when a selection finds nothing uncertain
	rounds    []RoundInfo

	// sel caches the last selection; valid while selVersion matches the
	// current version and the requested k matches, so clients that retry
	// a select (or poll it from several workers) get one batch per
	// posterior instead of recomputing the greedy sweep.
	sel        *SelectResponse
	selVersion int
	selK       int

	// merges logs applied answer sets by content hash for idempotent
	// replay of retried merges.
	merges map[uint64]*AnswersResponse

	// lastAccess is the eviction clock, guarded by mu (updated by every
	// operation through touch).
	lastAccess time.Time
}

// newSession builds a session; the caller (Manager.Create) has validated
// the request and constructed the prior.
func newSession(id string, prior *dist.Joint, selector core.Selector, selName string, pc float64, k, budget int, now time.Time) *Session {
	return &Session{
		id:         id,
		selector:   selector,
		selName:    selName,
		pc:         pc,
		k:          k,
		budget:     budget,
		posterior:  prior,
		merges:     make(map[uint64]*AnswersResponse),
		lastAccess: now,
	}
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// touch advances the eviction clock; callers hold mu.
func (s *Session) touch(now time.Time) {
	if now.After(s.lastAccess) {
		s.lastAccess = now
	}
}

// idleSince returns the last access time for TTL eviction.
func (s *Session) idleSince() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastAccess
}

// infoLocked snapshots the client-visible state; callers hold mu.
func (s *Session) infoLocked(withRounds bool) SessionInfo {
	info := SessionInfo{
		ID:          s.id,
		Version:     s.version,
		N:           s.posterior.N(),
		SupportSize: s.posterior.SupportSize(),
		Marginals:   append([]float64(nil), s.posterior.Marginals()...),
		Entropy:     s.posterior.Entropy(),
		Utility:     s.posterior.Utility(),
		Spent:       s.spent,
		Budget:      s.budget,
		K:           s.k,
		Pc:          s.pc,
		Selector:    s.selName,
		Done:        s.done || s.spent >= s.budget,
	}
	if withRounds {
		info.Rounds = append([]RoundInfo(nil), s.rounds...)
	}
	return info
}

// Info returns the session state, with the per-round trace when withRounds
// is set.
func (s *Session) Info(now time.Time, withRounds bool) SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch(now)
	return s.infoLocked(withRounds)
}

// Select returns the next task batch against the current posterior. kOverride
// > 0 replaces the session's per-round k for this batch. The batch size is
// clamped to the remaining budget; an empty batch (Done=true) means the
// budget is spent or nothing uncertain remains.
//
// The selection is cached keyed on (posterior version, effective k):
// repeating the call without an intervening merge returns the identical
// batch with Cached=true instead of re-running the greedy sweep.
func (s *Session) Select(now time.Time, kOverride int) (*SelectResponse, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch(now)

	k := s.k
	if kOverride > 0 {
		k = kOverride
	}
	if remaining := s.budget - s.spent; k > remaining {
		k = remaining
	}
	if n := s.posterior.N(); k > n {
		k = n
	}
	if k <= 0 || s.done {
		return &SelectResponse{Tasks: []int{}, Version: s.version, Done: true}, false, nil
	}
	if s.sel != nil && s.selVersion == s.version && s.selK == k {
		cached := *s.sel
		cached.Cached = true
		return &cached, true, nil
	}

	tasks, err := s.selector.Select(s.posterior, k, s.pc)
	if err != nil {
		return nil, false, fmt.Errorf("service: selection: %w", err)
	}
	resp := &SelectResponse{Tasks: tasks, Version: s.version}
	if len(tasks) == 0 {
		// Theorem 2: no remaining task nets positive utility. Latch so
		// later selects and Info report completion without re-sweeping.
		s.done = true
		resp.Done = true
	} else {
		h, err := core.TaskEntropy(s.posterior, tasks, s.pc)
		if err != nil {
			return nil, false, err
		}
		resp.TaskEntropy = h
	}
	s.sel = resp
	s.selVersion = s.version
	s.selK = k
	return resp, false, nil
}

// answerSetHash fingerprints an answer set (tasks, answers, version) for
// the idempotency log. FNV-1a over the canonical byte rendering; collisions
// would only conflate two retries into one replay, never corrupt state.
func answerSetHash(version int, tasks []int, answers []bool) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(version))
	for i, t := range tasks {
		put(uint64(t))
		if answers[i] {
			put(1)
		} else {
			put(0)
		}
	}
	return h.Sum64()
}

// Merge applies a crowd answer set to the posterior (Equation 3) and
// advances the version. It is idempotent by answer-set hash: an answer set
// that was already applied — same tasks, same answers, same referenced
// version — returns the recorded response with Merged=false instead of
// double-counting budget or conditioning twice, which makes network
// retries of POST …/answers safe.
//
// Version semantics: when the request carries a version it must either be
// the current one (the merge applies) or match an already-applied set (the
// recorded response replays); anything else is ErrVersionConflict. When
// the version is omitted, a duplicate of any applied answer set is treated
// as a retry; clients that intend to submit an identical answer set twice
// (possible when the selector re-picks the same tasks and the crowd answers
// identically) must thread the version through to disambiguate.
func (s *Session) Merge(now time.Time, req *AnswersRequest) (*AnswersResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch(now)

	if req.Version != nil {
		key := answerSetHash(*req.Version, req.Tasks, req.Answers)
		if prev, ok := s.merges[key]; ok {
			replay := *prev
			replay.Merged = false
			return &replay, nil
		}
		if *req.Version != s.version {
			return nil, ErrVersionConflict
		}
	} else {
		// No version: scan for a content match against any applied set.
		for v := 0; v < s.version; v++ {
			if prev, ok := s.merges[answerSetHash(v, req.Tasks, req.Answers)]; ok {
				replay := *prev
				replay.Merged = false
				return &replay, nil
			}
		}
	}

	if s.spent+len(req.Tasks) > s.budget {
		return nil, fmt.Errorf("%w: %d spent of %d, %d more requested",
			ErrBudgetExhausted, s.spent, s.budget, len(req.Tasks))
	}
	// In the normal select-then-answer flow the batch's H(T) was already
	// computed by Select against this same posterior; reuse it rather
	// than paying the entropy kernel a second time inside the critical
	// section. Out-of-band answer sets still compute it fresh.
	var taskH float64
	if s.sel != nil && s.selVersion == s.version && slices.Equal(s.sel.Tasks, req.Tasks) {
		taskH = s.sel.TaskEntropy
	} else {
		var err error
		taskH, err = core.TaskEntropy(s.posterior, req.Tasks, s.pc)
		if err != nil {
			return nil, err
		}
	}
	updated, err := core.MergeAnswers(s.posterior, req.Tasks, req.Answers, s.pc)
	if err != nil {
		return nil, fmt.Errorf("service: merge: %w", err)
	}

	mergedAt := s.version
	s.posterior = updated
	s.version++
	s.spent += len(req.Tasks)
	s.sel = nil    // selection cache is bound to the previous posterior
	s.done = false // the new posterior may be uncertain again; re-derive
	s.rounds = append(s.rounds, RoundInfo{
		Round:   s.version,
		Tasks:   append([]int(nil), req.Tasks...),
		Answers: append([]bool(nil), req.Answers...),
		CumCost: s.spent,
		Entropy: updated.Entropy(),
		TaskH:   taskH,
	})

	resp := &AnswersResponse{SessionInfo: s.infoLocked(false), Merged: true}
	s.merges[answerSetHash(mergedAt, req.Tasks, req.Answers)] = resp
	return resp, nil
}

// Posterior returns the current posterior distribution (immutable; safe to
// share).
func (s *Session) Posterior() *dist.Joint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.posterior
}
