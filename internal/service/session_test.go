package service

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"crowdfusion/internal/core"
	"crowdfusion/internal/dist"
)

// testSession builds a session over the paper's running example with the
// full greedy selector.
func testSession(t *testing.T, k, budget int) *Session {
	t.Helper()
	_, j := dist.RunningExample()
	return newSession("s1", j, core.NewGreedyPrunePre(), "Approx+Prune+Pre",
		0.8, k, budget, time.Unix(0, 0))
}

func TestSessionSelectCaching(t *testing.T) {
	s := testSession(t, 2, 6)
	now := time.Unix(1, 0)

	first, cached, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first select reported cached")
	}
	if len(first.Tasks) != 2 || first.Version != 0 {
		t.Fatalf("unexpected first batch %+v", first)
	}

	second, cached, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || !second.Cached {
		t.Fatal("repeat select did not hit the cache")
	}
	if !reflect.DeepEqual(second.Tasks, first.Tasks) || second.TaskEntropy != first.TaskEntropy {
		t.Fatalf("cached batch differs: %+v vs %+v", second, first)
	}

	// A different k misses the cache.
	third, cached, err := s.Select(context.Background(), now, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("k-override select reported cached")
	}
	if len(third.Tasks) != 1 {
		t.Fatalf("k=1 select returned %d tasks", len(third.Tasks))
	}

	// A merge invalidates the cache: the next select is recomputed
	// against the new posterior version.
	if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: first.Tasks, Answers: []bool{true, true}}); err != nil {
		t.Fatal(err)
	}
	fourth, cached, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("post-merge select served stale cache")
	}
	if fourth.Version != 1 {
		t.Fatalf("post-merge select version = %d, want 1", fourth.Version)
	}
}

func TestSessionMergeIdempotency(t *testing.T) {
	s := testSession(t, 2, 6)
	now := time.Unix(1, 0)
	sel, _, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := sel.Version
	req := &AnswersRequest{Tasks: sel.Tasks, Answers: []bool{true, false}, Version: &v}

	first, err := s.Merge(context.Background(), now, req)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Merged || first.Spent != 2 || first.Version != 1 {
		t.Fatalf("first merge state %+v", first.SessionInfo)
	}

	// Retry with the same body: replayed, not reapplied.
	replay, err := s.Merge(context.Background(), now, req)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Merged {
		t.Fatal("retry was re-applied")
	}
	if replay.Spent != 2 || replay.Version != 1 {
		t.Fatalf("replay mutated state: %+v", replay.SessionInfo)
	}
	if math.Abs(replay.Entropy-first.Entropy) > 0 {
		t.Fatalf("replay entropy %v != first %v", replay.Entropy, first.Entropy)
	}

	// Retry without a version: matched by content hash.
	replay2, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: sel.Tasks, Answers: []bool{true, false}})
	if err != nil {
		t.Fatal(err)
	}
	if replay2.Merged || replay2.Spent != 2 {
		t.Fatalf("versionless retry re-applied: %+v", replay2.SessionInfo)
	}

	// A different answer set at a stale version conflicts.
	stale := &AnswersRequest{Tasks: sel.Tasks, Answers: []bool{false, true}, Version: &v}
	if _, err := s.Merge(context.Background(), now, stale); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("stale-version merge error = %v, want ErrVersionConflict", err)
	}
}

func TestSessionBudgetEnforcement(t *testing.T) {
	s := testSession(t, 2, 3)
	now := time.Unix(1, 0)

	sel, _, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: sel.Tasks, Answers: []bool{true, true}}); err != nil {
		t.Fatal(err)
	}

	// 1 of 3 budget left: the next batch is clamped to one task.
	sel2, _, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel2.Tasks) > 1 {
		t.Fatalf("select ignored remaining budget: %d tasks", len(sel2.Tasks))
	}

	// Merging more than the remaining budget is rejected.
	over := &AnswersRequest{Tasks: []int{0, 1}, Answers: []bool{false, false}}
	if _, err := s.Merge(context.Background(), now, over); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget merge error = %v, want ErrBudgetExhausted", err)
	}

	if len(sel2.Tasks) == 1 {
		if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: sel2.Tasks, Answers: []bool{true}}); err != nil {
			t.Fatal(err)
		}
	}
	final, _, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done || len(final.Tasks) != 0 {
		t.Fatalf("exhausted session still selecting: %+v", final)
	}
	info := s.Info(now, true)
	if !info.Done || info.Spent > info.Budget {
		t.Fatalf("final info %+v", info)
	}
	if len(info.Rounds) != info.Version {
		t.Fatalf("%d rounds but version %d", len(info.Rounds), info.Version)
	}
}

func TestSessionDoneLatchOnCertainPosterior(t *testing.T) {
	// A single-world prior is certain: selection finds nothing uncertain,
	// so the first select latches Done with zero tasks and zero spend.
	j, err := dist.New(3, []dist.World{0b101}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	s := newSession("s2", j, core.NewGreedyPrunePre(), "Approx+Prune+Pre",
		0.8, 2, 10, time.Unix(0, 0))
	sel, _, err := s.Select(context.Background(), time.Unix(1, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Tasks) != 0 || !sel.Done {
		t.Fatalf("certain posterior selected %+v", sel)
	}
	info := s.Info(time.Unix(1, 0), false)
	if !info.Done || info.Spent != 0 {
		t.Fatalf("info %+v", info)
	}
}

// TestSessionMergeClearsDoneLatch: an out-of-band merge after a
// nothing-uncertain select must un-latch Done — the new posterior may be
// uncertain again, so the next select has to consult the selector instead
// of replaying the stale verdict.
func TestSessionMergeClearsDoneLatch(t *testing.T) {
	s := testSession(t, 2, 10)
	now := time.Unix(1, 0)
	s.mu.Lock()
	s.done = true // as if a previous sweep found nothing uncertain
	s.mu.Unlock()

	sel, _, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Done || len(sel.Tasks) != 0 {
		t.Fatalf("latched session still selecting: %+v", sel)
	}
	if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: []int{0}, Answers: []bool{false}}); err != nil {
		t.Fatal(err)
	}
	after, _, err := s.Select(context.Background(), now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after.Done || len(after.Tasks) == 0 {
		t.Fatalf("done latch survived a merge: %+v", after)
	}
	if after.Version != 1 {
		t.Fatalf("post-merge select version %d, want 1", after.Version)
	}
}

func TestSessionMergeValidatesEvidence(t *testing.T) {
	s := testSession(t, 2, 6)
	now := time.Unix(1, 0)
	for name, req := range map[string]*AnswersRequest{
		"out of range": {Tasks: []int{99}, Answers: []bool{true}},
		"duplicate":    {Tasks: []int{1, 1}, Answers: []bool{true, true}},
		"mismatched":   {Tasks: []int{0, 1}, Answers: []bool{true}},
	} {
		if _, err := s.Merge(context.Background(), now, req); err == nil {
			t.Errorf("%s: invalid merge accepted", name)
		}
	}
	// Failed merges must not advance state.
	if info := s.Info(now, false); info.Version != 0 || info.Spent != 0 {
		t.Fatalf("failed merges mutated state: %+v", info)
	}
}

// TestSessionMatchesEngine replays a session against core.Engine: the same
// prior, selector, crowd answers and budget must produce bit-identical
// posteriors, because the session routes through the same TaskEntropy /
// MergeAnswers kernel.
func TestSessionMatchesEngine(t *testing.T) {
	_, prior := dist.RunningExample()
	answer := func(tasks []int) []bool {
		out := make([]bool, len(tasks))
		for i, f := range tasks {
			out[i] = f%2 == 0 // deterministic scripted crowd
		}
		return out
	}

	eng := &core.Engine{
		Prior:    prior,
		Selector: core.NewGreedyPrunePre(),
		Crowd:    answerFunc(answer),
		Pc:       0.8,
		K:        2,
		Budget:   6,
	}
	want, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	s := newSession("s3", prior.Clone(), core.NewGreedyPrunePre(), "Approx+Prune+Pre",
		0.8, 2, 6, time.Unix(0, 0))
	now := time.Unix(1, 0)
	for {
		sel, _, err := s.Select(context.Background(), now, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Done || len(sel.Tasks) == 0 {
			break
		}
		v := sel.Version
		if _, err := s.Merge(context.Background(), now, &AnswersRequest{Tasks: sel.Tasks, Answers: answer(sel.Tasks), Version: &v}); err != nil {
			t.Fatal(err)
		}
	}

	got := s.Posterior()
	if got.SupportSize() != want.Final.SupportSize() {
		t.Fatalf("support %d != engine %d", got.SupportSize(), want.Final.SupportSize())
	}
	for i, w := range want.Final.Worlds() {
		if got.Worlds()[i] != w {
			t.Fatalf("world %d: %v != %v", i, got.Worlds()[i], w)
		}
		if got.Probs()[i] != want.Final.Probs()[i] {
			t.Fatalf("prob %d: %v != %v", i, got.Probs()[i], want.Final.Probs()[i])
		}
	}
	if info := s.Info(now, false); info.Spent != want.Cost {
		t.Fatalf("spent %d != engine cost %d", info.Spent, want.Cost)
	}
}

// answerFunc adapts a function to core.AnswerProvider.
type answerFunc func(tasks []int) []bool

func (f answerFunc) Answers(tasks []int) []bool { return f(tasks) }
