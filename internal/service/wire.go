// Package service implements crowdfusiond's HTTP/JSON refinement service:
// a concurrent session manager over the CrowdFusion select–ask–merge loop.
//
// A session wraps one refinement loop (one book, one output distribution).
// Clients create it from fused marginals or an explicit joint, repeatedly
// ask for the next entropy-maximizing task batch, post the crowd's answers,
// and read the refined posterior — the paper's Figure 1 loop turned into a
// long-running network service in the style of gMission-like platforms.
//
// The package splits into four layers:
//
//   - wire.go: the JSON wire format (joints, tasks, answers) with
//     validation at the trust boundary;
//   - session.go: the per-session serialized state machine
//     (select → await → merge) with selection caching and idempotent
//     merges;
//   - manager.go / lifecycle.go: the ownership-aware session cache —
//     manager.go gates every entry point on "does this node serve this
//     ID?" (minting only self-owned IDs at create time, redirecting the
//     rest with not_owner) over a pluggable store.SessionStore;
//     lifecycle.go owns the resident set: single-flight lazy loads, TTL
//     eviction (flush-and-unload on durable stores, expiry on volatile
//     ones), and relinquishment when ownership moves;
//   - server.go / metrics.go: the HTTP layer — routing, backpressure,
//     request timeouts, /healthz, /metrics, graceful drain.
//
// Sharding: plugged into an internal/cluster ring, a fleet of daemons
// partitions the session space deterministically by session ID. Misrouted
// requests get HTTP 421 with code "not_owner" and the owner's address;
// when a node dies or the topology changes, the new owner rebuilds each
// re-homed session from the shared store by record replay — migration and
// crash recovery are deliberately the same code path.
//
// Durability: every merge is persisted through the session store before it
// is acknowledged (fsynced, when the store is durable), so a SIGKILL never
// loses an acknowledged answer set; on restart the manager replays the
// stored op log through the same conditioning arithmetic and recovers each
// session bit-identically.
package service

import (
	"errors"
	"fmt"
	"math"
	"time"

	"crowdfusion/internal/core"
	"crowdfusion/internal/dist"
)

// Worker-model names accepted by CreateSessionRequest.WorkerModel. The
// model decides how crowd accuracy enters the merge: fixed uses the
// configured scalar pc for every judgment (the paper's Definition 2
// channel); em and dawid-skene estimate per-worker accuracy online from
// attributed judgments and condition each judgment on its worker's
// current estimate instead.
const (
	WorkerModelFixed      = "fixed"
	WorkerModelEM         = "em"
	WorkerModelDawidSkene = "dawid-skene"
)

// Typed judgment-validation failures, surfaced as machine-readable
// envelope codes (see the Code constants).
var (
	// ErrUnknownWorkerModel rejects a session create naming a worker model
	// other than fixed, em, or dawid-skene.
	ErrUnknownWorkerModel = errors.New("service: unknown worker model")
	// ErrDuplicateTask rejects a submission carrying two judgments for one
	// task: a single submission is one judgment per task (redundant
	// judgments arrive as separate submissions).
	ErrDuplicateTask = errors.New("service: duplicate task in one submission")
	// ErrAttributionConflict rejects a retry whose judgments re-attribute
	// an already-committed answer set to different workers: the original
	// attribution is journaled and cannot be rewritten by a replay.
	ErrAttributionConflict = errors.New("service: retry re-attributes committed judgments")
)

// WireJoint is the JSON wire representation of a dist.Joint: the sparse
// support as parallel world/probability vectors. Worlds are bitmask values
// (bit i set ⇔ fact i judged true); probabilities are non-negative weights
// that the receiver normalizes, so senders need not renormalize after
// truncation or arithmetic.
type WireJoint struct {
	N      int       `json:"n"`
	Worlds []uint64  `json:"worlds"`
	Probs  []float64 `json:"probs"`
}

// NewWireJoint converts a distribution to its wire form. The slices are
// fresh copies: mutating them cannot corrupt the (immutable, shared-slice)
// Joint.
func NewWireJoint(j *dist.Joint) WireJoint {
	worlds := make([]uint64, j.SupportSize())
	for i, w := range j.Worlds() {
		worlds[i] = uint64(w)
	}
	return WireJoint{
		N:      j.N(),
		Worlds: worlds,
		Probs:  append([]float64(nil), j.Probs()...),
	}
}

// Joint validates the wire form and rebuilds the distribution. All
// structural validation (fact count bounds, world range, weight sanity,
// positive total mass) is delegated to dist.New — the same gate every
// in-process constructor passes through — so a joint that arrived over the
// wire obeys exactly the invariants an in-process one does.
func (w WireJoint) Joint() (*dist.Joint, error) {
	if len(w.Worlds) != len(w.Probs) {
		return nil, fmt.Errorf("service: joint has %d worlds but %d probs", len(w.Worlds), len(w.Probs))
	}
	ws := make([]dist.World, len(w.Worlds))
	for i, v := range w.Worlds {
		ws[i] = dist.World(v)
	}
	j, err := dist.New(w.N, ws, w.Probs)
	if err != nil {
		return nil, err
	}
	return j, nil
}

// CreateSessionRequest is the body of POST /v1/sessions. Exactly one of
// Marginals (per-fact correctness probabilities, expanded to the product
// distribution) or Joint (an explicit sparse support) must be set.
type CreateSessionRequest struct {
	// Marginals initializes the prior as the independent product
	// distribution — the bridge from fusion methods that output only
	// per-fact confidences.
	Marginals []float64 `json:"marginals,omitempty"`
	// Joint initializes the prior from an explicit sparse joint, for
	// callers that track output correlations (e.g. mutually exclusive
	// author sets).
	Joint *WireJoint `json:"joint,omitempty"`
	// Selector names the task-selection strategy: OPT, Approx,
	// Approx+Prune, Approx+Pre, Approx+Prune+Pre, Random. Default
	// Approx+Prune+Pre.
	Selector string `json:"selector,omitempty"`
	// Pc is the crowd accuracy assumed by selection and merging,
	// in [0.5, 1].
	Pc float64 `json:"pc"`
	// K is the number of tasks per round (per select call). 1..20.
	K int `json:"k"`
	// Budget is the total number of tasks the session may ask.
	Budget int `json:"budget"`
	// Seed seeds the Random selector; ignored by deterministic
	// selectors.
	Seed int64 `json:"seed,omitempty"`
	// WorkerModel selects how crowd accuracy enters merging: "fixed"
	// (default) uses Pc for every judgment; "em" and "dawid-skene"
	// estimate per-worker accuracy online from attributed judgments and
	// weight each judgment by its worker's current estimate.
	WorkerModel string `json:"worker_model,omitempty"`
}

// Validate checks everything except the prior itself (which is validated
// during construction by dist.New / dist.Independent).
func (r *CreateSessionRequest) Validate() error {
	if len(r.Marginals) == 0 && r.Joint == nil {
		return errors.New("service: session needs marginals or an explicit joint")
	}
	if len(r.Marginals) > 0 && r.Joint != nil {
		return errors.New("service: marginals and joint are mutually exclusive")
	}
	if r.Pc < 0.5 || r.Pc > 1 || math.IsNaN(r.Pc) {
		return fmt.Errorf("service: pc %v outside [0.5, 1]", r.Pc)
	}
	if r.K <= 0 {
		return fmt.Errorf("service: k %d must be positive", r.K)
	}
	if r.K > core.MaxTasksPerRound {
		return fmt.Errorf("service: k %d exceeds the per-round limit %d (the answer space is 2^k)",
			r.K, core.MaxTasksPerRound)
	}
	if r.Budget <= 0 {
		return fmt.Errorf("service: budget %d must be positive", r.Budget)
	}
	if r.K > r.Budget {
		return fmt.Errorf("service: k %d exceeds budget %d", r.K, r.Budget)
	}
	switch r.WorkerModel {
	case "", WorkerModelFixed, WorkerModelEM, WorkerModelDawidSkene:
	default:
		return fmt.Errorf("%w: %q (want %q, %q, or %q)", ErrUnknownWorkerModel,
			r.WorkerModel, WorkerModelFixed, WorkerModelEM, WorkerModelDawidSkene)
	}
	return nil
}

// SessionInfo is the client-visible session state, returned by GET
// /v1/sessions/{id} and embedded in mutation responses.
type SessionInfo struct {
	ID string `json:"id"`
	// Version counts applied merges; it names the posterior a selection
	// or answer set refers to.
	Version int `json:"version"`
	// N is the number of facts.
	N int `json:"n"`
	// SupportSize is the posterior's sparse support size.
	SupportSize int `json:"support_size"`
	// Marginals are the posterior per-fact correctness probabilities.
	Marginals []float64 `json:"marginals"`
	// Entropy is H(O) of the posterior in bits; Utility is -H(O)
	// (Definition 4).
	Entropy float64 `json:"entropy"`
	Utility float64 `json:"utility"`
	// Spent and Budget account tasks asked against the session budget.
	Spent  int `json:"spent"`
	Budget int `json:"budget"`
	// K and Pc echo the session configuration.
	K        int     `json:"k"`
	Pc       float64 `json:"pc"`
	Selector string  `json:"selector"`
	// WorkerModel names how crowd accuracy enters merging ("fixed", "em",
	// "dawid-skene").
	WorkerModel string `json:"worker_model"`
	// Done reports that no further refinement will happen: the budget is
	// exhausted or the last selection found nothing uncertain to ask.
	Done bool `json:"done"`
	// Pending describes the partially answered batch, when an incremental
	// answer sequence is in flight. While it is set, Marginals/Entropy/
	// Utility reflect the *provisional* posterior — the round-start
	// posterior conditioned on the judgments received so far — whereas
	// Version still names the last committed posterior.
	Pending *PendingInfo `json:"pending,omitempty"`
	// Rounds is the per-round trace (tasks, answers, posterior entropy).
	Rounds []RoundInfo `json:"rounds,omitempty"`
}

// RoundInfo is one merged round in a session's trace.
type RoundInfo struct {
	Round   int     `json:"round"`
	Tasks   []int   `json:"tasks"`
	Answers []bool  `json:"answers"`
	CumCost int     `json:"cum_cost"`
	Entropy float64 `json:"entropy"`
	TaskH   float64 `json:"task_entropy"`
}

// SelectRequest is the body of POST /v1/sessions/{id}/select. K optionally
// overrides the session's per-round task count for this batch only.
type SelectRequest struct {
	K int `json:"k,omitempty"`
}

// Validate bounds the per-batch override the same way session creation
// bounds K, so an oversized override is a 400 up front rather than a
// selector failure.
func (r *SelectRequest) Validate() error {
	if r.K < 0 {
		return fmt.Errorf("service: k override %d must not be negative", r.K)
	}
	if r.K > core.MaxTasksPerRound {
		return fmt.Errorf("service: k override %d exceeds the per-round limit %d",
			r.K, core.MaxTasksPerRound)
	}
	return nil
}

// SelectResponse is the next task batch. Version names the posterior the
// batch was selected against; answers should be submitted with the same
// version. Repeating select without an intervening merge returns the same
// batch from cache (Cached=true).
type SelectResponse struct {
	Tasks []int `json:"tasks"`
	// TaskEntropy is H(T), the selection objective, for the batch.
	TaskEntropy float64 `json:"task_entropy"`
	Version     int     `json:"version"`
	Cached      bool    `json:"cached,omitempty"`
	// Done is set when the batch is empty: budget exhausted or nothing
	// uncertain remains.
	Done bool `json:"done,omitempty"`
}

// Judgment is one attributed crowd answer: Worker said Answer for Task.
// It is the canonical unit of the answers wire shape; the parallel
// Tasks/Answers arrays of AnswersRequest are the unattributed
// compatibility form.
type Judgment struct {
	Task   int  `json:"task"`
	Answer bool `json:"answer"`
	// Worker identifies the answering worker. Empty means anonymous: the
	// judgment is attributed to the node's configured anonymous worker,
	// exactly as the legacy parallel-array form is.
	Worker string `json:"worker,omitempty"`
	// Source optionally names the platform the judgment came from
	// ("mturk", "gmission", …). Recorded, never interpreted.
	Source string `json:"source,omitempty"`
	// ObservedAt optionally timestamps the judgment at its source.
	// Recorded for audit; server-side ordering uses arrival order.
	ObservedAt time.Time `json:"observed_at,omitzero"`
}

// AnswersRequest is the body of POST /v1/sessions/{id}/answers: the
// crowd's judgments for a previously selected batch, in exactly one of
// two forms — Judgments (canonical, worker-attributed) or the parallel
// Tasks/Answers arrays (the legacy compatibility form, attributed to the
// configured anonymous worker). Version is the posterior version from the
// SelectResponse; when omitted (nil) the current version is assumed and
// duplicate answer sets are treated as retries (see Session.Merge for the
// idempotency contract).
type AnswersRequest struct {
	// Judgments is the canonical, attributed form: one judgment per task.
	Judgments []Judgment `json:"judgments,omitempty"`
	// Tasks/Answers are the compatibility form: parallel arrays with no
	// worker identity. Mutually exclusive with Judgments.
	Tasks   []int  `json:"tasks,omitempty"`
	Answers []bool `json:"answers,omitempty"`
	Version *int   `json:"version,omitempty"`
	// Partial marks the judgments as a subset of the pending selected
	// batch rather than a complete answer set. Partial submissions
	// accumulate in a journaled ledger; when the ledger covers the batch,
	// the merge commits with a posterior bit-identical to submitting the
	// whole batch at once, and budget is spent exactly once, at commit.
	Partial bool `json:"partial,omitempty"`
}

// Validate checks the shape of the request; semantic validation (range,
// membership) happens against the session's distribution during merging.
// Duplicate tasks within one submission are a shape error in both forms:
// a submission is one judgment per task (ErrDuplicateTask, surfaced as
// code "duplicate_task").
func (r *AnswersRequest) Validate() error {
	if len(r.Judgments) > 0 {
		if len(r.Tasks) != 0 || len(r.Answers) != 0 {
			return errors.New("service: judgments and tasks/answers are mutually exclusive")
		}
		seen := make(map[int]bool, len(r.Judgments))
		for _, j := range r.Judgments {
			if seen[j.Task] {
				return fmt.Errorf("%w: task %d judged twice", ErrDuplicateTask, j.Task)
			}
			seen[j.Task] = true
		}
		return nil
	}
	if len(r.Tasks) == 0 {
		return errors.New("service: answers request needs at least one judgment")
	}
	if len(r.Tasks) != len(r.Answers) {
		return fmt.Errorf("service: %d tasks but %d answers", len(r.Tasks), len(r.Answers))
	}
	// The legacy form deliberately has no duplicate-task check: partial
	// submissions have always tolerated repeated judgments (matching
	// duplicates replay, contradictions map to ErrAnswerConflict in the
	// ledger), and the compatibility contract keeps that behavior intact.
	// Only the judgments form — the canonical API — rejects duplicates.
	return nil
}

// flatten returns the request's judgment set in parallel-array form:
// tasks/answers always, workers (empty slots replaced by anon) and
// sources only for the attributed Judgments form. attributed reports
// which form the request used — attribution conflicts on retry are
// checked only for explicitly attributed submissions.
func (r *AnswersRequest) flatten(anon string) (tasks []int, answers []bool, workers, sources []string, attributed bool) {
	if len(r.Judgments) == 0 {
		return r.Tasks, r.Answers, nil, nil, false
	}
	tasks = make([]int, len(r.Judgments))
	answers = make([]bool, len(r.Judgments))
	workers = make([]string, len(r.Judgments))
	hasSource := false
	for i, j := range r.Judgments {
		tasks[i] = j.Task
		answers[i] = j.Answer
		workers[i] = j.Worker
		if workers[i] == "" {
			workers[i] = anon
		}
		if j.Source != "" {
			hasSource = true
		}
	}
	if hasSource {
		sources = make([]string, len(r.Judgments))
		for i, j := range r.Judgments {
			sources[i] = j.Source
		}
	}
	return tasks, answers, workers, sources, true
}

// AnswersResponse reports the refined state after a merge. Merged is false
// when the request was recognized as a retry of an already-applied answer
// set and served idempotently from the merge log.
type AnswersResponse struct {
	SessionInfo
	Merged bool `json:"merged"`
	// Partial reports that the request joined an incremental answer
	// sequence: judgments were recorded (or replayed) against the pending
	// batch. When Merged is also true, this request's judgments completed
	// the batch and the merge committed.
	Partial bool `json:"partial,omitempty"`
}

// AnswerEvent is one crowd judgment: worker said Answer for task Task.
type AnswerEvent struct {
	Task   int  `json:"task"`
	Answer bool `json:"answer"`
}

// PendingInfo describes a partially answered batch: the selection being
// answered one judgment at a time, which judgments have arrived, and which
// tasks remain before the batch commits.
type PendingInfo struct {
	// Version is the committed posterior version the batch was selected
	// against — the version the commit will advance from.
	Version int `json:"version"`
	// Tasks is the full selected batch, in selection order.
	Tasks []int `json:"tasks"`
	// Answered lists the judgments received so far, in batch order.
	Answered []AnswerEvent `json:"answered"`
	// Remaining lists the batch tasks still awaiting judgments.
	Remaining []int `json:"remaining"`
}

// Machine-readable error codes carried by ErrorResponse.Code, for clients
// that branch on failure kind without parsing messages. Absent (empty) for
// generic validation errors.
const (
	CodeNotFound        = "not_found"
	CodeExpired         = "expired" // the TTL janitor dropped the session from a volatile store
	CodeVersionConflict = "version_conflict"
	CodeBudgetExhausted = "budget_exhausted"
	CodeTooManySessions = "too_many_sessions"
	CodeStoreFailure    = "store_failure"
	// CodeNotOwner (HTTP 421) means another node serves this session; the
	// envelope's Owner field carries its address. Clients retry there.
	CodeNotOwner = "not_owner"
	// CodeFenced (HTTP 421) means this node's write lease for the session
	// was superseded — the store's fencing epoch refused the write or the
	// adoption. Owner carries the current lease holder when known. Clients
	// handle it exactly like not_owner: re-resolve and retry; the refused
	// write was never applied, so the retry is idempotent-safe.
	CodeFenced = "fenced"
	// CodeMethodNotAllowed (HTTP 405) accompanies an Allow header listing
	// the methods the route supports.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNoPendingBatch rejects a partial answer when no selection is
	// outstanding at the current version — select a batch first.
	CodeNoPendingBatch = "no_pending_batch"
	// CodeNotInBatch rejects a partial answer naming a task outside the
	// pending selected batch.
	CodeNotInBatch = "not_in_batch"
	// CodeAnswerConflict rejects a judgment that contradicts one already
	// journaled for the same task in the pending batch.
	CodeAnswerConflict = "answer_conflict"
	// CodeTooManySubscribers (HTTP 429) caps per-session SSE fan-out.
	CodeTooManySubscribers = "too_many_subscribers"
	// CodeUnknownWorkerModel rejects a session create naming a worker
	// model other than fixed, em, or dawid-skene.
	CodeUnknownWorkerModel = "unknown_worker_model"
	// CodeDuplicateTask rejects a submission with two judgments for one
	// task — one submission is one judgment per task.
	CodeDuplicateTask = "duplicate_task"
	// CodeAttributionConflict (HTTP 409) rejects a retry whose judgments
	// re-attribute an already-committed answer set to different workers.
	CodeAttributionConflict = "attribution_conflict"
)

// ErrorResponse is the uniform error envelope of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code, when set, names the failure class (see the Code constants).
	Code string `json:"code,omitempty"`
	// Owner accompanies code "not_owner": the base address of the node
	// that serves the session this request addressed.
	Owner string `json:"owner,omitempty"`
	// RequestID is the server-assigned id of the failed request (also sent
	// as the X-Request-Id response header). Quote it when reporting a
	// failure: it joins the response to the server's logs and to the span
	// in /debug/traces.
	RequestID string `json:"request_id,omitempty"`
}

// SSE event types carried by GET /v1/sessions/{id}/events. Each event's
// data is a SessionEvent; the SSE id field is the event's Seq, which a
// reconnecting subscriber echoes as Last-Event-ID to resume.
const (
	// EventSnapshot opens a stream (or re-opens one whose resume point
	// fell outside the replay window): the full current state.
	EventSnapshot = "snapshot"
	// EventSelect announces a freshly selected batch (Tasks).
	EventSelect = "select"
	// EventPartial announces journaled judgments for the pending batch;
	// the payload carries the provisional posterior.
	EventPartial = "partial"
	// EventMerge announces a committed answer set and the new posterior.
	EventMerge = "merge"
	// EventDone announces the done latch: nothing uncertain remains or the
	// budget is exhausted.
	EventDone = "done"
	// EventExpire terminates the stream: the TTL janitor dropped the
	// session from a volatile store.
	EventExpire = "expire"
	// EventDeleted terminates the stream: the session was deleted.
	EventDeleted = "deleted"
	// EventRedirect terminates the stream: ownership moved; Owner carries
	// the address of the node now serving the session. Re-subscribe there.
	EventRedirect = "redirect"
	// EventReset terminates the stream server-side: this subscriber fell
	// behind and events were dropped. Reconnect (Last-Event-ID resumes
	// from the replay window, or a fresh snapshot is sent).
	EventReset = "reset"
	// EventError is synthesized by the Go client's Watch when a stream
	// fails terminally; the server never sends it. Error carries details.
	EventError = "error"
	// EventRefit announces re-estimated worker accuracies on an em or
	// dawid-skene session: a merge committed and the worker model was
	// refit over all accumulated observations. The payload's SessionInfo
	// is the committed state; Refits counts refits so far.
	EventRefit = "refit"
)

// SessionEvent is one state-transition delta on the session event stream.
// Seq is the per-session stream sequence number (the SSE id); the embedded
// SessionInfo is the state after the transition — provisional while a
// partial sequence is in flight, committed otherwise.
type SessionEvent struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	SessionInfo
	// Tasks accompanies select events: the batch just chosen.
	Tasks []int `json:"tasks,omitempty"`
	// Refits accompanies refit events: refits performed so far.
	Refits int `json:"refits,omitempty"`
	// Owner accompanies redirect events: where to re-subscribe.
	Owner string `json:"owner,omitempty"`
	// Error accompanies client-synthesized error events.
	Error string `json:"error,omitempty"`
	// TraceID identifies the request whose handling caused this transition
	// (the W3C trace id), so a streamed merge can be joined to the trace —
	// and the client retry chain — that produced it. Empty for transitions
	// without an originating request (janitor expiry, lease loss).
	TraceID string `json:"trace_id,omitempty"`
}

// SessionSummary is one row of GET /v1/sessions: enough to triage a node's
// sessions without loading them.
type SessionSummary struct {
	ID      string `json:"id"`
	Version int    `json:"version"`
	Spent   int    `json:"spent"`
	Budget  int    `json:"budget"`
	Done    bool   `json:"done"`
	// Resident reports whether the session is live in memory. Entropy is
	// present only for resident sessions — computing it for an unloaded
	// session would force a full record replay per listed row.
	Resident bool     `json:"resident"`
	Entropy  *float64 `json:"entropy,omitempty"`
}

// ListSessionsResponse is the paginated body of GET /v1/sessions.
// Sessions are ordered by ID; NextAfter, when set, is the cursor for the
// next page (pass it as ?after=).
type ListSessionsResponse struct {
	Sessions  []SessionSummary `json:"sessions"`
	NextAfter string           `json:"next_after,omitempty"`
}

// WorkerInfo is one worker's state under a session's worker model: the
// accuracy estimate the merge path currently uses, its unsmoothed input,
// and how much evidence backs it.
type WorkerInfo struct {
	Worker string `json:"worker"`
	// Accuracy is the smoothed estimate the weighted merge conditions on:
	// the raw model estimate shrunk toward the session's configured pc by
	// a Beta prior, so zero-support workers sit exactly at pc.
	Accuracy float64 `json:"accuracy"`
	// Raw is the model's unsmoothed estimate (EM or Dawid–Skene). Equal
	// to Accuracy under the fixed model.
	Raw float64 `json:"raw"`
	// Bias is the worker's tendency toward answering true: the fraction
	// of the worker's judgments that were "true", 0.5 at zero support.
	Bias float64 `json:"bias"`
	// Support is the number of judgments observed from this worker;
	// Correct counts those agreeing with the session's pseudo-gold (the
	// current posterior's majority judgment per fact).
	Support int `json:"support"`
	Correct int `json:"correct"`
	// WilsonLo/WilsonHi bound the pseudo-gold agreement rate at ~95%
	// confidence (Wilson score interval); [0, 1] at zero support.
	WilsonLo float64 `json:"wilson_lo"`
	WilsonHi float64 `json:"wilson_hi"`
}

// CalibrationBinInfo is one reliability bin of a session's calibration
// report: predicted-probability range, how many fact predictions landed
// in it, and how the mean prediction compares to the empirical rate.
type CalibrationBinInfo struct {
	Lo            float64 `json:"lo"`
	Hi            float64 `json:"hi"`
	Count         int     `json:"count"`
	MeanPredicted float64 `json:"mean_predicted"`
	EmpiricalRate float64 `json:"empirical_rate"`
}

// CalibrationResponse is the body of GET /v1/sessions/{id}/calibration:
// a reliability diagram of the session posterior against its own
// pseudo-gold (each fact's current majority judgment), plus the
// per-worker accuracy estimates behind the weighted merge path. It is a
// diagnostic: with true gold unavailable online, a sharply miscalibrated
// report signals a pc or worker-model misfit worth investigating.
type CalibrationResponse struct {
	ID          string `json:"id"`
	Version     int    `json:"version"`
	WorkerModel string `json:"worker_model"`
	// Refits counts worker-model refits performed so far (0 under the
	// fixed model).
	Refits int `json:"refits"`
	// Observations counts attributed judgments accumulated so far.
	Observations int `json:"observations"`
	// Bins is the reliability diagram over per-fact marginals; ECE is the
	// expected calibration error (bin-weighted |predicted − empirical|),
	// Brier the mean squared error against pseudo-gold, Total the number
	// of fact predictions binned.
	Bins  []CalibrationBinInfo `json:"bins"`
	ECE   float64              `json:"ece"`
	Brier float64              `json:"brier"`
	Total int                  `json:"total"`
	// Workers lists per-worker estimates sorted by worker ID.
	Workers []WorkerInfo `json:"workers"`
}

// WorkerFleetInfo is one worker's aggregate state across every resident
// session on a node.
type WorkerFleetInfo struct {
	Worker string `json:"worker"`
	// Sessions counts resident sessions with observations from this
	// worker.
	Sessions int `json:"sessions"`
	// Support is the worker's total judgment count across those sessions;
	// Correct sums per-session pseudo-gold agreement.
	Support int `json:"support"`
	Correct int `json:"correct"`
	// Accuracy is the support-weighted mean of the worker's per-session
	// smoothed estimates.
	Accuracy float64 `json:"accuracy"`
	// WilsonLo/WilsonHi bound the pooled pseudo-gold agreement rate.
	WilsonLo float64 `json:"wilson_lo"`
	WilsonHi float64 `json:"wilson_hi"`
}

// WorkersResponse is the body of GET /v1/workers: the node-local fleet
// view over resident sessions, sorted by worker ID. It is per-node by
// design — sessions are sharded, so a cluster-wide view is the union of
// each node's response.
type WorkersResponse struct {
	Workers []WorkerFleetInfo `json:"workers"`
	// Sessions counts the resident sessions scanned.
	Sessions int `json:"sessions"`
}
