package service

import (
	"encoding/json"
	"math"
	"testing"

	"crowdfusion/internal/dist"
)

func TestWireJointRoundTrip(t *testing.T) {
	cases := []func() (*dist.Joint, error){
		func() (*dist.Joint, error) { _, j := dist.RunningExample(); return j, nil },
		func() (*dist.Joint, error) { return dist.Uniform(4) },
		func() (*dist.Joint, error) { return dist.Independent([]float64{0.5, 0.63, 0.58, 0.49}) },
		func() (*dist.Joint, error) {
			return dist.New(6, []dist.World{0b000011, 0b110000, 0b001100}, []float64{0.2, 0.5, 0.3})
		},
	}
	for i, mk := range cases {
		j, err := mk()
		if err != nil {
			t.Fatalf("case %d: build: %v", i, err)
		}
		wire := NewWireJoint(j)
		buf, err := json.Marshal(wire)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back WireJoint
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		got, err := back.Joint()
		if err != nil {
			t.Fatalf("case %d: rebuild: %v", i, err)
		}
		if got.N() != j.N() || got.SupportSize() != j.SupportSize() {
			t.Fatalf("case %d: shape changed: n %d→%d support %d→%d",
				i, j.N(), got.N(), j.SupportSize(), got.SupportSize())
		}
		for k, w := range j.Worlds() {
			if got.Worlds()[k] != w {
				t.Fatalf("case %d: world %d changed: %v → %v", i, k, w, got.Worlds()[k])
			}
			if math.Abs(got.Probs()[k]-j.Probs()[k]) > 1e-15 {
				t.Fatalf("case %d: prob %d changed: %v → %v", i, k, j.Probs()[k], got.Probs()[k])
			}
		}
		if math.Abs(got.Entropy()-j.Entropy()) > 1e-12 {
			t.Fatalf("case %d: entropy changed: %v → %v", i, j.Entropy(), got.Entropy())
		}
	}
}

func TestWireJointSharesNothing(t *testing.T) {
	j, err := dist.Uniform(3)
	if err != nil {
		t.Fatal(err)
	}
	wire := NewWireJoint(j)
	wire.Worlds[0] = 99
	wire.Probs[0] = 42
	if j.Worlds()[0] == 99 || j.Probs()[0] == 42 {
		t.Fatal("wire form aliases the joint's internal slices")
	}
}

func TestWireJointValidation(t *testing.T) {
	bad := []WireJoint{
		{N: 2, Worlds: []uint64{0, 1}, Probs: []float64{0.5}},      // length mismatch
		{N: 0, Worlds: []uint64{0}, Probs: []float64{1}},           // n out of range
		{N: 2, Worlds: []uint64{4}, Probs: []float64{1}},           // world beyond n
		{N: 2, Worlds: []uint64{0}, Probs: []float64{-1}},          // negative weight
		{N: 2, Worlds: []uint64{}, Probs: []float64{}},             // empty support
		{N: 2, Worlds: []uint64{0, 1}, Probs: []float64{0, 0}},     // zero mass
		{N: 2, Worlds: []uint64{1}, Probs: []float64{math.Inf(1)}}, // non-finite
	}
	for i, w := range bad {
		if _, err := w.Joint(); err == nil {
			t.Errorf("case %d: invalid wire joint %+v accepted", i, w)
		}
	}
}

func TestCreateSessionRequestValidate(t *testing.T) {
	valid := CreateSessionRequest{
		Marginals: []float64{0.5, 0.6}, Pc: 0.8, K: 2, Budget: 6,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	jw := NewWireJoint(mustUniform(t, 2))
	cases := map[string]CreateSessionRequest{
		"no prior":        {Pc: 0.8, K: 1, Budget: 2},
		"both priors":     {Marginals: []float64{0.5}, Joint: &jw, Pc: 0.8, K: 1, Budget: 2},
		"pc too low":      {Marginals: []float64{0.5}, Pc: 0.4, K: 1, Budget: 2},
		"pc too high":     {Marginals: []float64{0.5}, Pc: 1.1, K: 1, Budget: 2},
		"pc NaN":          {Marginals: []float64{0.5}, Pc: math.NaN(), K: 1, Budget: 2},
		"k zero":          {Marginals: []float64{0.5}, Pc: 0.8, K: 0, Budget: 2},
		"budget zero":     {Marginals: []float64{0.5}, Pc: 0.8, K: 1, Budget: 0},
		"k beyond budget": {Marginals: []float64{0.5}, Pc: 0.8, K: 3, Budget: 2},
		"k beyond round limit": {
			Marginals: []float64{0.5}, Pc: 0.8, K: 25, Budget: 100,
		},
	}
	for name, req := range cases {
		if err := req.Validate(); err == nil {
			t.Errorf("%s: invalid request accepted", name)
		}
	}
}

func TestSelectRequestValidate(t *testing.T) {
	for _, k := range []int{0, 1, 20} {
		r := SelectRequest{K: k}
		if err := r.Validate(); err != nil {
			t.Errorf("k override %d rejected: %v", k, err)
		}
	}
	for _, k := range []int{-1, 21, 100} {
		r := SelectRequest{K: k}
		if err := r.Validate(); err == nil {
			t.Errorf("k override %d accepted", k)
		}
	}
}

func TestAnswersRequestValidate(t *testing.T) {
	ok := AnswersRequest{Tasks: []int{0, 2}, Answers: []bool{true, false}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	for name, req := range map[string]AnswersRequest{
		"empty":    {},
		"mismatch": {Tasks: []int{0, 1}, Answers: []bool{true}},
	} {
		if err := req.Validate(); err == nil {
			t.Errorf("%s: invalid request accepted", name)
		}
	}
}

func mustUniform(t *testing.T, n int) *dist.Joint {
	t.Helper()
	j, err := dist.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	return j
}
