package service

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"reflect"
	"testing"
	"time"
)

// workerCreateReq builds a create request with room for many attributed
// rounds: uniform marginals over n facts and an effectively unlimited
// budget.
func workerCreateReq(n int, model string) *CreateSessionRequest {
	marg := make([]float64, n)
	for i := range marg {
		marg[i] = 0.5
	}
	return &CreateSessionRequest{
		Marginals:   marg,
		Pc:          0.8,
		K:           2,
		Budget:      1 << 20,
		Seed:        7,
		WorkerModel: model,
	}
}

// judge pairs every task with a worker and a planted answer.
func judge(tasks []int, answers []bool, workers []string) []Judgment {
	js := make([]Judgment, len(tasks))
	for i := range tasks {
		js[i] = Judgment{Task: tasks[i], Answer: answers[i], Worker: workers[i]}
	}
	return js
}

func TestCreateRejectsUnknownWorkerModel(t *testing.T) {
	m := NewManager(ManagerConfig{})
	defer m.Close()

	req := workerCreateReq(4, "majority-vote")
	if _, err := m.Create(context.Background(), req); !errors.Is(err, ErrUnknownWorkerModel) {
		t.Fatalf("err = %v, want ErrUnknownWorkerModel", err)
	}
	for _, model := range []string{"", WorkerModelFixed, WorkerModelEM, WorkerModelDawidSkene} {
		s, err := m.Create(context.Background(), workerCreateReq(4, model))
		if err != nil {
			t.Fatalf("model %q: %v", model, err)
		}
		want := model
		if want == "" {
			want = WorkerModelFixed
		}
		if got := s.Info(time.Now(), false).WorkerModel; got != want {
			t.Fatalf("model %q: info reports %q", model, got)
		}
	}
}

func TestJudgmentsRejectDuplicateTask(t *testing.T) {
	m := NewManager(ManagerConfig{})
	defer m.Close()
	s, err := m.Create(context.Background(), workerCreateReq(4, WorkerModelEM))
	if err != nil {
		t.Fatal(err)
	}
	v := 0
	req := &AnswersRequest{Version: &v, Judgments: []Judgment{
		{Task: 0, Answer: true, Worker: "w1"},
		{Task: 1, Answer: false, Worker: "w2"},
		{Task: 0, Answer: false, Worker: "w2"},
	}}
	if _, err := s.Merge(context.Background(), time.Now(), req); !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("err = %v, want ErrDuplicateTask", err)
	}
}

func TestAttributionConflictOnRetry(t *testing.T) {
	m := NewManager(ManagerConfig{})
	defer m.Close()
	s, err := m.Create(context.Background(), workerCreateReq(4, WorkerModelEM))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	v := 0
	tasks := []int{0, 1}
	answers := []bool{true, false}
	first := &AnswersRequest{Version: &v, Judgments: judge(tasks, answers, []string{"w1", "w2"})}
	if resp, err := s.Merge(context.Background(), now, first); err != nil || !resp.Merged {
		t.Fatalf("first merge: %+v, %v", resp, err)
	}
	// Same answer set, same attribution: idempotent replay.
	resp, err := s.Merge(context.Background(), now, first)
	if err != nil || resp.Merged {
		t.Fatalf("identical retry: %+v, %v", resp, err)
	}
	// Same answer set re-attributed to a different worker: refused.
	conflicting := &AnswersRequest{Version: &v, Judgments: judge(tasks, answers, []string{"w1", "w9"})}
	if _, err := s.Merge(context.Background(), now, conflicting); !errors.Is(err, ErrAttributionConflict) {
		t.Fatalf("re-attributed retry: err = %v, want ErrAttributionConflict", err)
	}
	// A legacy-form retry carries no attribution to contradict.
	legacy := &AnswersRequest{Version: &v, Tasks: tasks, Answers: answers}
	if resp, err := s.Merge(context.Background(), now, legacy); err != nil || resp.Merged {
		t.Fatalf("legacy retry: %+v, %v", resp, err)
	}
}

// TestServerWorkerEnvelopeCodes pins the three new failure classes to
// their typed envelope codes over HTTP, per the API-versioning satellite.
func TestServerWorkerEnvelopeCodes(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var errResp ErrorResponse
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		workerCreateReq(4, "majority-vote"), &errResp); s != http.StatusBadRequest {
		t.Fatalf("unknown model status %d", s)
	}
	if errResp.Code != CodeUnknownWorkerModel {
		t.Fatalf("unknown model code %q, want %q", errResp.Code, CodeUnknownWorkerModel)
	}

	var info SessionInfo
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		workerCreateReq(4, WorkerModelEM), &info); s != http.StatusCreated {
		t.Fatalf("create status %d", s)
	}
	url := ts.URL + "/v1/sessions/" + info.ID + "/answers"

	v := 0
	dup := &AnswersRequest{Version: &v, Judgments: []Judgment{
		{Task: 0, Answer: true, Worker: "w1"},
		{Task: 0, Answer: true, Worker: "w2"},
	}}
	errResp = ErrorResponse{}
	if s := doJSON(t, http.MethodPost, url, dup, &errResp); s != http.StatusBadRequest {
		t.Fatalf("duplicate task status %d", s)
	}
	if errResp.Code != CodeDuplicateTask {
		t.Fatalf("duplicate task code %q, want %q", errResp.Code, CodeDuplicateTask)
	}

	good := &AnswersRequest{Version: &v, Judgments: judge([]int{0, 1}, []bool{true, false}, []string{"w1", "w2"})}
	if s := doJSON(t, http.MethodPost, url, good, nil); s != http.StatusOK {
		t.Fatalf("merge status %d", s)
	}
	conflicting := &AnswersRequest{Version: &v, Judgments: judge([]int{0, 1}, []bool{true, false}, []string{"w1", "w9"})}
	errResp = ErrorResponse{}
	if s := doJSON(t, http.MethodPost, url, conflicting, &errResp); s != http.StatusConflict {
		t.Fatalf("attribution conflict status %d", s)
	}
	if errResp.Code != CodeAttributionConflict {
		t.Fatalf("attribution conflict code %q, want %q", errResp.Code, CodeAttributionConflict)
	}
}

// driveDifferentialRound submits round r's deterministic answer set to a
// fixed session (legacy arrays) and an em session (judgments from workers
// never seen before), returning after asserting both merged.
func driveDifferentialRound(t *testing.T, now time.Time, fixed, em *Session, r int) {
	t.Helper()
	tasks := []int{0, 1, 2, 3}
	answers := make([]bool, len(tasks))
	for i, f := range tasks {
		answers[i] = (f+r)%2 == 0
	}
	v1, v2 := r, r
	legacy := &AnswersRequest{Version: &v1, Tasks: tasks, Answers: answers}
	if resp, err := fixed.Merge(context.Background(), now, legacy); err != nil || !resp.Merged {
		t.Fatalf("round %d fixed: %+v, %v", r, resp, err)
	}
	// Fresh worker IDs every round: the refit never covers them, so every
	// judgment's channel sits exactly at pc — the uniform case.
	workers := make([]string, len(tasks))
	for i := range workers {
		workers[i] = "w" + string(rune('a'+r)) + "-" + string(rune('0'+i))
	}
	attributed := &AnswersRequest{Version: &v2, Judgments: judge(tasks, answers, workers)}
	if resp, err := em.Merge(context.Background(), now, attributed); err != nil || !resp.Merged {
		t.Fatalf("round %d em: %+v, %v", r, resp, err)
	}
}

// TestWeightedUniformMatchesFixedInProcess is the ISSUE's differential
// oracle at the session level: an em session whose every judgment comes
// from a worker the refit has never covered conditions through the
// weighted path with all channels pinned at pc — and must reproduce the
// fixed-pc posterior bit-for-bit, round after round, refits and all.
func TestWeightedUniformMatchesFixedInProcess(t *testing.T) {
	m := NewManager(ManagerConfig{})
	defer m.Close()
	var weighted int
	m.weightedMerged = func() { weighted++ }

	fixed, err := m.Create(context.Background(), workerCreateReq(4, WorkerModelFixed))
	if err != nil {
		t.Fatal(err)
	}
	em, err := m.Create(context.Background(), workerCreateReq(4, WorkerModelEM))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	for r := 0; r < 5; r++ {
		driveDifferentialRound(t, now, fixed, em, r)
		fp, ep := fixed.Posterior(), em.Posterior()
		if !reflect.DeepEqual(fp.Worlds(), ep.Worlds()) || !reflect.DeepEqual(fp.Probs(), ep.Probs()) {
			t.Fatalf("round %d: posteriors diverged\nfixed %v %v\n   em %v %v",
				r, fp.Worlds(), fp.Probs(), ep.Worlds(), ep.Probs())
		}
	}
	// The equivalence must come from delegation inside the weighted path,
	// not from never taking it: the em session refit after round one and
	// conditioned every later round through the weighted kernel.
	em.mu.Lock()
	refits := em.refits
	em.mu.Unlock()
	if refits < 4 {
		t.Fatalf("em session refit %d times, want one per merge after the first", refits)
	}
	if weighted < 4 {
		t.Fatalf("weighted conditioning ran %d times, want every post-refit round", weighted)
	}
}

// TestWeightedUniformMatchesFixedHTTP runs the same oracle over the wire:
// both submission forms through the full HTTP stack, marginals compared
// exactly (Go's JSON float encoding round-trips bit-for-bit).
func TestWeightedUniformMatchesFixedHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var fixed, em SessionInfo
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", workerCreateReq(4, WorkerModelFixed), &fixed); s != http.StatusCreated {
		t.Fatalf("create fixed: %d", s)
	}
	if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", workerCreateReq(4, WorkerModelEM), &em); s != http.StatusCreated {
		t.Fatalf("create em: %d", s)
	}
	for r := 0; r < 4; r++ {
		tasks := []int{0, 1, 2, 3}
		answers := make([]bool, len(tasks))
		for i, f := range tasks {
			answers[i] = (f+r)%2 == 0
		}
		workers := make([]string, len(tasks))
		for i := range workers {
			workers[i] = "rw" + string(rune('a'+r)) + string(rune('0'+i))
		}
		v1, v2 := r, r
		var fResp, eResp AnswersResponse
		if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+fixed.ID+"/answers",
			&AnswersRequest{Version: &v1, Tasks: tasks, Answers: answers}, &fResp); s != http.StatusOK {
			t.Fatalf("round %d fixed merge: %d", r, s)
		}
		if s := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+em.ID+"/answers",
			&AnswersRequest{Version: &v2, Judgments: judge(tasks, answers, workers)}, &eResp); s != http.StatusOK {
			t.Fatalf("round %d em merge: %d", r, s)
		}
		if !reflect.DeepEqual(fResp.Marginals, eResp.Marginals) || fResp.Entropy != eResp.Entropy {
			t.Fatalf("round %d: wire marginals diverged\nfixed %v\n   em %v", r, fResp.Marginals, eResp.Marginals)
		}
	}
	// The em session's calibration surface is live and attributes the
	// fleet it saw.
	var cal CalibrationResponse
	if s := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+em.ID+"/calibration", nil, &cal); s != http.StatusOK {
		t.Fatalf("calibration: %d", s)
	}
	if cal.WorkerModel != WorkerModelEM || len(cal.Workers) != 16 || cal.Refits == 0 {
		t.Fatalf("calibration = model %q, %d workers, %d refits", cal.WorkerModel, len(cal.Workers), cal.Refits)
	}
}

// TestCrashRecoveryWeightedBitIdentical is the satellite SIGKILL test: an
// em session whose refits produced genuinely non-uniform weights is
// abandoned without shutdown, recovered from its journal by a second
// manager, and must serve the identical posterior bits and identical
// per-worker statistics. A fixed/em differential pair rides along so the
// uniform-weights oracle also holds across replay.
func TestCrashRecoveryWeightedBitIdentical(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	mcfg := func() ManagerConfig { return ManagerConfig{now: func() time.Time { return now }} }

	m1 := newFileManager(t, dir, mcfg())
	em, err := m1.Create(context.Background(), workerCreateReq(4, WorkerModelDawidSkene))
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m1.Create(context.Background(), workerCreateReq(4, WorkerModelFixed))
	if err != nil {
		t.Fatal(err)
	}
	unif, err := m1.Create(context.Background(), workerCreateReq(4, WorkerModelEM))
	if err != nil {
		t.Fatal(err)
	}

	// The weighted session reuses three workers of planted disagreement,
	// so after the first refit their channels genuinely differ.
	crew := []string{"w1", "w2", "w3"}
	var lastReq *AnswersRequest
	for r := 0; r < 4; r++ {
		tasks := []int{0, 1, 2, 3}
		answers := make([]bool, len(tasks))
		workers := make([]string, len(tasks))
		for i, f := range tasks {
			workers[i] = crew[(r+i)%len(crew)]
			answers[i] = f%2 == 0
			if workers[i] == "w3" {
				answers[i] = !answers[i] // w3 contradicts the others
			}
		}
		v := r
		lastReq = &AnswersRequest{Version: &v, Judgments: judge(tasks, answers, workers)}
		if resp, err := em.Merge(context.Background(), now, lastReq); err != nil || !resp.Merged {
			t.Fatalf("round %d: %+v, %v", r, resp, err)
		}
		driveDifferentialRound(t, now, fixed, unif, r)
	}
	em.mu.Lock()
	uniform := true
	sn1, sp1 := em.workerChannelLocked("w1")
	sn3, sp3 := em.workerChannelLocked("w3")
	if sn1 != sn3 || sp1 != sp3 {
		uniform = false
	}
	em.mu.Unlock()
	if uniform {
		t.Fatal("planted disagreement produced uniform channels; the weighted path is untested")
	}
	wantFP := fingerprint(em, now)
	wantStats := em.WorkerStats()
	wantFixed := fingerprint(fixed, now)
	wantUnif := fingerprint(unif, now)
	// No Close: the process just died.

	m2 := newFileManager(t, dir, mcfg())
	defer m2.Close()
	em2, err := m2.Get(context.Background(), em.ID())
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	requireIdentical(t, fingerprint(em2, now), wantFP)
	if got := em2.WorkerStats(); !reflect.DeepEqual(got, wantStats) {
		t.Fatalf("worker stats diverged after replay:\n got %+v\nwant %+v", got, wantStats)
	}
	// The uniform-weights differential holds across replay too.
	fixed2, err := m2.Get(context.Background(), fixed.ID())
	if err != nil {
		t.Fatal(err)
	}
	unif2, err := m2.Get(context.Background(), unif.ID())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, fingerprint(fixed2, now), wantFixed)
	requireIdentical(t, fingerprint(unif2, now), wantUnif)
	gotF, gotU := fingerprint(fixed2, now), fingerprint(unif2, now)
	if !reflect.DeepEqual(gotF.probs, gotU.probs) || !reflect.DeepEqual(gotF.worlds, gotU.worlds) {
		t.Fatal("fixed and uniform-em posteriors diverged after replay")
	}

	// An attributed retry of the last acknowledged set replays
	// idempotently with its original attribution — and a re-attributed one
	// is still refused after recovery.
	resp, err := em2.Merge(context.Background(), now, lastReq)
	if err != nil || resp.Merged {
		t.Fatalf("attributed retry after recovery: %+v, %v", resp, err)
	}
	bad := *lastReq
	bad.Judgments = append([]Judgment(nil), lastReq.Judgments...)
	bad.Judgments[0].Worker = "w9"
	if _, err := em2.Merge(context.Background(), now, &bad); !errors.Is(err, ErrAttributionConflict) {
		t.Fatalf("re-attributed retry after recovery: err = %v, want ErrAttributionConflict", err)
	}
}

// TestGoldenAdversarialWorkerDownWeighted is the ISSUE's golden test: a
// planted low-accuracy worker among honest ones is estimated near its
// planted accuracy, its influence falls below the honest workers', and
// the weighted posterior lands closer to the planted truth than the
// fixed-pc run fed the identical answers.
func TestGoldenAdversarialWorkerDownWeighted(t *testing.T) {
	const (
		nFacts     = 8
		rounds     = 12
		honestAcc  = 0.9
		plantedAcc = 0.55
	)
	truth := func(f int) bool { return f%2 == 0 }
	accOf := map[string]float64{"honest-a": honestAcc, "honest-b": honestAcc, "adversary": plantedAcc}
	crew := []string{"honest-a", "honest-b", "adversary"}

	m := NewManager(ManagerConfig{})
	defer m.Close()
	em, err := m.Create(context.Background(), workerCreateReq(nFacts, WorkerModelEM))
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m.Create(context.Background(), workerCreateReq(nFacts, WorkerModelFixed))
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(1000, 0)
	rng := rand.New(rand.NewSource(99))
	for r := 0; r < rounds; r++ {
		tasks := make([]int, nFacts)
		answers := make([]bool, nFacts)
		workers := make([]string, nFacts)
		for f := 0; f < nFacts; f++ {
			tasks[f] = f
			workers[f] = crew[(r+f)%len(crew)]
			answers[f] = truth(f)
			if rng.Float64() >= accOf[workers[f]] {
				answers[f] = !answers[f]
			}
		}
		v1, v2 := r, r
		if resp, err := em.Merge(context.Background(), now,
			&AnswersRequest{Version: &v1, Judgments: judge(tasks, answers, workers)}); err != nil || !resp.Merged {
			t.Fatalf("round %d em: %+v, %v", r, resp, err)
		}
		if resp, err := fixed.Merge(context.Background(), now,
			&AnswersRequest{Version: &v2, Tasks: tasks, Answers: answers}); err != nil || !resp.Merged {
			t.Fatalf("round %d fixed: %+v, %v", r, resp, err)
		}
	}

	stats := em.WorkerStats()
	byWorker := make(map[string]WorkerInfo, len(stats))
	for _, w := range stats {
		byWorker[w.Worker] = w
	}
	adv := byWorker["adversary"]
	if math.Abs(adv.Accuracy-plantedAcc) > 0.1 {
		t.Fatalf("adversary estimated at %.3f, planted %.2f (want within 0.1)", adv.Accuracy, plantedAcc)
	}
	for _, h := range []string{"honest-a", "honest-b"} {
		if byWorker[h].Accuracy <= adv.Accuracy {
			t.Fatalf("honest %s estimated %.3f, not above adversary %.3f",
				h, byWorker[h].Accuracy, adv.Accuracy)
		}
	}

	meanErr := func(s *Session) float64 {
		var sum float64
		marg := s.Info(now, false).Marginals
		for f, p := range marg {
			want := 0.0
			if truth(f) {
				want = 1.0
			}
			sum += math.Abs(p - want)
		}
		return sum / float64(len(marg))
	}
	emErr, fixedErr := meanErr(em), meanErr(fixed)
	if emErr >= fixedErr {
		t.Fatalf("weighted posterior error %.4f not below fixed-pc error %.4f", emErr, fixedErr)
	}
	t.Logf("adversary est %.3f (raw %.3f), honest est %.3f/%.3f, posterior error em %.4f vs fixed %.4f",
		adv.Accuracy, adv.Raw, byWorker["honest-a"].Accuracy, byWorker["honest-b"].Accuracy, emErr, fixedErr)
}

// TestLegacyFixedJournalUnchanged: a fixed session fed only legacy
// parallel-array submissions journals no observations and stores no worker
// model — its durable record is byte-compatible with pre-worker-model
// nodes — while still recovering bit-identically.
func TestLegacyFixedJournalUnchanged(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	m1 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	s1, err := m1.Create(context.Background(), testCreateReq())
	if err != nil {
		t.Fatal(err)
	}
	last := runRounds(t, s1, now, 2)
	want := fingerprint(s1, now)

	rec := s1.record()
	if rec.WorkerModel != "" || len(rec.Observations) != 0 {
		t.Fatalf("legacy fixed session polluted its record: model %q, %d observations",
			rec.WorkerModel, len(rec.Observations))
	}

	m2 := newFileManager(t, dir, ManagerConfig{now: func() time.Time { return now }})
	defer m2.Close()
	s2, err := m2.Get(context.Background(), s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, fingerprint(s2, now), want)
	if resp, err := s2.Merge(context.Background(), now, last); err != nil || resp.Merged {
		t.Fatalf("legacy idempotent retry after recovery: %+v, %v", resp, err)
	}
}
