package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// DefaultCompactEvery is how many logged ops a session accumulates before
// its log is folded back into the snapshot.
const DefaultCompactEvery = 64

// fileStripes is the number of per-ID mutex stripes. Operations on
// different sessions proceed in parallel; operations on one session (or two
// colliding in a stripe) serialize, which is what keeps
// snapshot-write/log-truncate sequences atomic with respect to each other.
const fileStripes = 16

// File is the durable SessionStore: per-session snapshot files plus
// append-only op logs under one data directory, pure stdlib.
//
// On-disk layout, one pair of files per session:
//
//	<dir>/<id>.json — the snapshot: a Record with compacted ops
//	<dir>/<id>.log  — ops appended since the snapshot, one JSON per line
//
// Durability contract: Append writes the op and fsyncs the log before
// returning, so an acknowledged merge survives SIGKILL. Snapshots are
// written to a temp file, fsynced, renamed into place, and the directory
// fsynced — a crash leaves either the old or the new snapshot, never a torn
// one. Compaction (folding the log into a fresh snapshot) runs
// automatically every CompactEvery appends; a crash between the snapshot
// rename and the log truncation is healed on load, because ops whose
// version is already in the snapshot fold as no-ops.
//
// A torn or corrupt log tail (the crash arrived mid-write) is detected on
// load: the session recovers to the last good record and the log is
// truncated back to the good prefix so later appends extend valid state.
//
// Shared data dirs: a clustered deployment points several processes at
// one directory, relying on session ownership for the one-writer-per-
// session discipline instead of Lock. The primary defense is the lease
// epoch gate (lease.go): each session's lease lives in <dir>/<id>.lease
// next to its snapshot and log, every Append/Put states the epoch it was
// issued under, and the check-then-write sequence runs under a
// per-session flock (<dir>/<id>.lock), so a deposed owner's write is
// refused with ErrFenced atomically with respect to the steal that
// deposed it — the window is closed, not shrunk. Behind that gate, a
// stat fence remains as defense-in-depth and bookkeeping resync: when
// the log's on-disk size differs from this process's cache (a peer wrote
// legitimately during a handoff, or leases are disabled), the state is
// re-read from disk before the version gate runs, so even an unleased
// divergent writer is refused with ErrCorrupt rather than silently
// forking the history.
type File struct {
	dir          string
	compactEvery int

	// Logf, when set, receives background-failure log lines (best-effort
	// compaction retries). Nil discards them. Set it before first use.
	Logf func(format string, args ...any)

	// lockFile pins the data dir against a second writer (see Lock).
	lockFile *os.File

	locks [fileStripes]sync.Mutex

	// state tracks, per session, how many ops sit in the log since the
	// last snapshot (the compaction trigger) and the next merge version
	// (the append-ordering check). An entry's presence also records that
	// the log tail has been verified (and repaired if torn) since this
	// process opened the store. The map is guarded by stateMu; the values
	// are only read or written under the session's stripe lock.
	stateMu sync.Mutex
	state   map[string]fileSessionState
}

// fileSessionState is the in-memory bookkeeping for one session's files.
// pendBatch/pendDone mirror the record's pending ledger so partial appends
// can be validated without re-reading the log: an append this state admits
// is exactly an op the read path's fold will accept — the store never
// acknowledges a partial that a later Get would truncate as corrupt.
type fileSessionState struct {
	logged    int   // ops in the log since the last snapshot
	nextVer   int   // merge version the next logged op must carry
	logSize   int64 // verified log bytes on disk as of the last read/write
	pendBatch []int // pending batch, nil when no ledger is open
	pendDone  []int // batch tasks already judged
	obsCount  int   // observations folded so far (the next observe op's Seq)
}

// NewFile opens (creating if needed) a file store rooted at dir.
// compactEvery bounds the op log length before automatic compaction;
// 0 means DefaultCompactEvery.
func NewFile(dir string, compactEvery int) (*File, error) {
	if dir == "" {
		return nil, errors.New("store: file store needs a data directory")
	}
	if compactEvery <= 0 {
		compactEvery = DefaultCompactEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	return &File{
		dir:          dir,
		compactEvery: compactEvery,
		state:        make(map[string]fileSessionState),
	}, nil
}

// Durable reports true: acknowledged writes survive restart.
func (s *File) Durable() bool { return true }

// Dir returns the store's data directory.
func (s *File) Dir() string { return s.dir }

func (s *File) lockFor(id string) *sync.Mutex {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return &s.locks[h&(fileStripes-1)]
}

func (s *File) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *File) snapPath(id string) string  { return filepath.Join(s.dir, id+".json") }
func (s *File) logPath(id string) string   { return filepath.Join(s.dir, id+".log") }
func (s *File) leasePath(id string) string { return filepath.Join(s.dir, id+".lease") }
func (s *File) fencePath(id string) string { return filepath.Join(s.dir, id+".lock") }

// Put atomically replaces the session's snapshot and discards its log.
func (s *File) Put(rec *Record) error {
	if err := checkID(rec.ID); err != nil {
		return err
	}
	if err := rec.validate(); err != nil {
		return err
	}
	mu := s.lockFor(rec.ID)
	mu.Lock()
	defer mu.Unlock()
	unlock, err := s.fenceLock(rec.ID)
	if err != nil {
		return err
	}
	defer unlock()
	cur, err := s.readLease(rec.ID)
	if err != nil {
		return err
	}
	if err := checkFence(rec.ID, rec.LeaseEpoch, cur); err != nil {
		return err
	}
	return s.putLocked(rec)
}

// putLocked writes the snapshot (temp + fsync + rename + dir fsync), then
// truncates the log. The caller holds the session's stripe lock.
func (s *File) putLocked(rec *Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot %s: %w", rec.ID, err)
	}
	tmp := s.snapPath(rec.ID) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: writing snapshot %s: %w", rec.ID, err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmp, s.snapPath(rec.ID)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing snapshot %s: %w", rec.ID, err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	// The log's ops are folded into the snapshot now; a crash before this
	// remove is healed on load by version dedup.
	if err := os.Remove(s.logPath(rec.ID)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: truncating log %s: %w", rec.ID, err)
	}
	s.setState(rec.ID, fileSessionState{
		logged:    0,
		nextVer:   len(rec.Ops),
		logSize:   0,
		pendBatch: append([]int(nil), rec.PendingBatch...),
		pendDone:  append([]int(nil), rec.PendingTasks...),
		obsCount:  len(rec.Observations),
	})
	return nil
}

// logSizeOnDisk returns the session log's current byte size (0 when the
// log does not exist) — the cheap fence Append uses to notice another
// process's writes in a shared data dir.
func (s *File) logSizeOnDisk(id string) int64 {
	fi, err := os.Stat(s.logPath(id))
	if err != nil {
		return 0
	}
	return fi.Size()
}

func (s *File) setState(id string, st fileSessionState) {
	s.stateMu.Lock()
	s.state[id] = st
	s.stateMu.Unlock()
}

func (s *File) getState(id string) (fileSessionState, bool) {
	s.stateMu.Lock()
	st, ok := s.state[id]
	s.stateMu.Unlock()
	return st, ok
}

// Append durably logs one op: write, fsync, then (every compactEvery ops)
// fold the log back into the snapshot.
func (s *File) Append(id string, op Op) error {
	if err := checkID(id); err != nil {
		return err
	}
	mu := s.lockFor(id)
	mu.Lock()
	defer mu.Unlock()
	unlock, err := s.fenceLock(id)
	if err != nil {
		return err
	}
	defer unlock()
	cur, err := s.readLease(id)
	if err != nil {
		return err
	}
	if err := checkFence(id, op.Epoch, cur); err != nil {
		return err
	}

	st, seen := s.getState(id)
	if !seen {
		// First touch since the store opened: verify the record exists and
		// repair any torn log tail so this append extends valid state.
		if _, err := s.getLocked(id); err != nil {
			return err
		}
		st, _ = s.getState(id)
	} else if size := s.logSizeOnDisk(id); size != st.logSize {
		// The log changed under us: another PROCESS sharing the data dir
		// wrote since our bookkeeping was current — a peer that adopted
		// this session during a handoff and has since handed it back.
		// Resync from disk so the version gate below judges this op
		// against the real log, not a stale cache. With leases enabled the
		// epoch gate above has already refused any *divergent* writer;
		// this stat fence remains as defense-in-depth for unleased
		// deployments (where a divergent writer is refused with
		// ErrCorrupt) and as the bookkeeping refresh for legitimate
		// hand-backs.
		if _, err := s.getLocked(id); err != nil {
			return err
		}
		st, _ = s.getState(id)
	}

	// Appends must extend the record in strict version order. A gap could
	// never replay; an op BEHIND the current version is just as dangerous:
	// retries are deduplicated in memory before they reach the store, so a
	// stale append means a second, divergent writer — silently dropping it
	// would let its in-memory state part ways with disk. (The skip-stale
	// tolerance lives only on the read path, where it heals the log a
	// crashed compaction leaves behind.)
	if op.Kind != OpMerge && op.Kind != OpDone && op.Kind != OpPartial && op.Kind != OpObserve {
		return fmt.Errorf("%w: op kind %q for %s", ErrCorrupt, op.Kind, id)
	}
	if op.Version != st.nextVer {
		return fmt.Errorf("%w: op %q version %d does not extend %d applied ops for %s",
			ErrCorrupt, op.Kind, op.Version, st.nextVer, id)
	}
	if op.Kind == OpMerge && (len(op.Tasks) == 0 || len(op.Tasks) != len(op.Answers)) {
		return fmt.Errorf("%w: merge op for %s has %d tasks, %d answers",
			ErrCorrupt, id, len(op.Tasks), len(op.Answers))
	}
	if op.Kind == OpPartial {
		if len(op.Tasks) == 0 || len(op.Tasks) != len(op.Answers) || len(op.Batch) == 0 {
			return fmt.Errorf("%w: partial op for %s has %d tasks, %d answers, batch %d",
				ErrCorrupt, id, len(op.Tasks), len(op.Answers), len(op.Batch))
		}
		// Semantic gate, mirroring fold: membership in the open ledger's
		// batch, no duplicate judgments, strict subset of the batch.
		batch := st.pendBatch
		if len(batch) == 0 {
			batch = op.Batch
		}
		inBatch := make(map[int]bool, len(batch))
		for _, task := range batch {
			inBatch[task] = true
		}
		judged := make(map[int]bool, len(st.pendDone))
		for _, task := range st.pendDone {
			judged[task] = true
		}
		for _, task := range op.Tasks {
			if !inBatch[task] {
				return fmt.Errorf("%w: partial op for %s judges task %d outside batch %v",
					ErrCorrupt, id, task, batch)
			}
			if judged[task] {
				return fmt.Errorf("%w: partial op for %s re-judges task %d",
					ErrCorrupt, id, task)
			}
			judged[task] = true
		}
		if len(st.pendDone)+len(op.Tasks) >= len(batch) {
			return fmt.Errorf("%w: partial ops for %s would cover batch %v; a complete round must arrive as its merge op",
				ErrCorrupt, id, batch)
		}
	}
	if op.Kind == OpObserve {
		// Shape and ordering gates, mirroring fold: an acknowledged observe
		// op must be exactly one the read path will fold, never one a later
		// Get would truncate as a corrupt tail.
		if len(op.Tasks) == 0 || len(op.Tasks) != len(op.Answers) || len(op.Tasks) != len(op.Workers) {
			return fmt.Errorf("%w: observe op for %s has %d tasks, %d answers, %d workers",
				ErrCorrupt, id, len(op.Tasks), len(op.Answers), len(op.Workers))
		}
		if len(op.Sources) != 0 && len(op.Sources) != len(op.Tasks) {
			return fmt.Errorf("%w: observe op for %s has %d tasks but %d sources",
				ErrCorrupt, id, len(op.Tasks), len(op.Sources))
		}
		for i, w := range op.Workers {
			if w == "" {
				return fmt.Errorf("%w: observe op for %s has unattributed judgment %d",
					ErrCorrupt, id, i)
			}
		}
		if op.Seq != st.obsCount {
			return fmt.Errorf("%w: observe op seq %d does not extend %d observations for %s",
				ErrCorrupt, op.Seq, st.obsCount, id)
		}
	}

	line, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("store: encoding op for %s: %w", id, err)
	}
	line = append(line, '\n')
	f, err := os.OpenFile(s.logPath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening log %s: %w", id, err)
	}
	if _, err := f.Write(line); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: appending op for %s: %w", id, err)
	}

	st.logged++
	st.logSize += int64(len(line))
	switch op.Kind {
	case OpMerge:
		st.nextVer++
		st.pendBatch, st.pendDone = nil, nil
	case OpPartial:
		if len(st.pendBatch) == 0 {
			st.pendBatch = append([]int(nil), op.Batch...)
		}
		st.pendDone = append(append([]int(nil), st.pendDone...), op.Tasks...)
	case OpObserve:
		st.obsCount += len(op.Tasks)
	}
	s.setState(id, st)
	if st.logged >= s.compactEvery {
		// Best-effort: the op above is already durable, so a compaction
		// hiccup must NOT fail the append — the caller would retry an op
		// that is on disk and trip the version-order check. The logged
		// counter stays high, so the next append retries the compaction;
		// a persistent disk problem surfaces through that append's own
		// write instead.
		if err := s.compactLocked(id); err != nil {
			s.logf("store: compacting %s: %v (will retry)", id, err)
		}
	}
	return nil
}

// compactLocked folds the session's log back into its snapshot. The
// caller holds the session's stripe lock.
func (s *File) compactLocked(id string) error {
	rec, err := s.getLocked(id)
	if err != nil {
		return err
	}
	return s.putLocked(rec)
}

// Get loads the snapshot and folds in the logged ops. It takes the
// per-session fence lock: the read path repairs torn log tails by
// truncating, and that repair must not race a peer's in-flight append.
func (s *File) Get(id string) (*Record, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	mu := s.lockFor(id)
	mu.Lock()
	defer mu.Unlock()
	unlock, err := s.fenceLock(id)
	if err != nil {
		return nil, err
	}
	defer unlock()
	return s.getLocked(id)
}

// getLocked reads snapshot + log. A corrupt or torn log tail is truncated
// away so the on-disk state matches the recovered record. The caller holds
// the session's stripe lock.
func (s *File) getLocked(id string) (*Record, error) {
	data, err := os.ReadFile(s.snapPath(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, id)
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot %s: %w", id, err)
	}
	rec := &Record{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("%w: snapshot %s: %v", ErrCorrupt, id, err)
	}
	if rec.ID != id {
		return nil, fmt.Errorf("%w: snapshot %s names session %q", ErrCorrupt, id, rec.ID)
	}
	if err := rec.validate(); err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", id, err)
	}

	logged := 0
	logData, err := os.ReadFile(s.logPath(id))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: reading log %s: %w", id, err)
	}
	good := 0 // byte offset of the end of the last good line
	for off := 0; off < len(logData); {
		nl := bytes.IndexByte(logData[off:], '\n')
		if nl < 0 {
			break // torn final line: the crash arrived mid-append
		}
		line := logData[off : off+nl]
		var op Op
		if json.Unmarshal(line, &op) != nil || !rec.fold(op) {
			break // corrupt tail: recover to the last good record
		}
		off += nl + 1
		good = off
		logged++
	}
	if good < len(logData) {
		// Truncate the bad tail so subsequent appends extend valid state
		// instead of hiding behind garbage.
		if err := os.Truncate(s.logPath(id), int64(good)); err != nil {
			return nil, fmt.Errorf("store: repairing log %s: %w", id, err)
		}
	}
	s.setState(id, fileSessionState{
		logged:    logged,
		nextVer:   len(rec.Ops),
		logSize:   int64(good),
		pendBatch: append([]int(nil), rec.PendingBatch...),
		pendDone:  append([]int(nil), rec.PendingTasks...),
		obsCount:  len(rec.Observations),
	})
	return rec, nil
}

// Delete removes the session's snapshot and log.
func (s *File) Delete(id string) (bool, error) {
	if err := checkID(id); err != nil {
		return false, err
	}
	mu := s.lockFor(id)
	mu.Lock()
	defer mu.Unlock()
	unlock, err := s.fenceLock(id)
	if err != nil {
		return false, err
	}
	defer unlock()
	existed := true
	if err := os.Remove(s.snapPath(id)); err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return false, fmt.Errorf("store: deleting %s: %w", id, err)
		}
		existed = false
	}
	if err := os.Remove(s.logPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return existed, fmt.Errorf("store: deleting log %s: %w", id, err)
	}
	// The lease dies with the session: a deleted ID's epoch history is
	// meaningless once the record is gone (a recreated session starts a
	// fresh lease line). The fence lock file goes too, best-effort.
	if err := os.Remove(s.leasePath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return existed, fmt.Errorf("store: deleting lease %s: %w", id, err)
	}
	os.Remove(s.fencePath(id))
	s.stateMu.Lock()
	delete(s.state, id)
	s.stateMu.Unlock()
	if existed {
		return true, s.syncDir()
	}
	return false, nil
}

// List scans the data directory for snapshot files. os.ReadDir returns
// entries sorted by name, so the IDs come back in lexicographic order as
// the interface requires.
func (s *File) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", s.dir, err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if checkID(id) == nil {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// Close releases the data-dir lock (when Lock was called); per-session
// file descriptors are never held between calls.
func (s *File) Close() error { return s.unlock() }

// AcquireLease takes or refreshes the session's write lease. The lease
// record lives in <dir>/<id>.lease next to the session's snapshot and log,
// written atomically and fsynced, and the read-modify-write runs under the
// per-session fence lock so concurrent acquisitions from different
// processes serialize into a strict epoch order.
func (s *File) AcquireLease(id, owner string, ttl time.Duration, now time.Time) (Lease, error) {
	return s.lease(id, func(cur *Lease) (Lease, error) {
		return grantLease(cur, id, owner, ttl, now, false)
	})
}

// StealLease takes the lease unconditionally at a higher epoch.
func (s *File) StealLease(id, owner string, ttl time.Duration, now time.Time) (Lease, error) {
	return s.lease(id, func(cur *Lease) (Lease, error) {
		return grantLease(cur, id, owner, ttl, now, true)
	})
}

// RenewLease extends the holder's lease, fencing stale holders.
func (s *File) RenewLease(id, owner string, epoch uint64, ttl time.Duration, now time.Time) (Lease, error) {
	return s.lease(id, func(cur *Lease) (Lease, error) {
		return renewLease(cur, id, owner, epoch, ttl, now)
	})
}

// ReleaseLease clears the holder, keeping the epoch fence on disk.
func (s *File) ReleaseLease(id, owner string, epoch uint64) error {
	_, err := s.lease(id, func(cur *Lease) (Lease, error) {
		next, err := releaseLease(cur, id, owner, epoch)
		if err != nil {
			return Lease{}, err
		}
		if next == nil {
			return Lease{}, errLeaseUnchanged
		}
		return *next, nil
	})
	if errors.Is(err, errLeaseUnchanged) {
		return nil
	}
	return err
}

// GetLease returns the session's current lease, or nil when never leased.
func (s *File) GetLease(id string) (*Lease, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	mu := s.lockFor(id)
	mu.Lock()
	defer mu.Unlock()
	return s.readLease(id)
}

// errLeaseUnchanged is an internal sentinel: the transition was a no-op and
// nothing should be written.
var errLeaseUnchanged = errors.New("store: lease unchanged")

// lease runs one lease transition under the stripe lock and the
// cross-process fence lock, persisting the result durably.
func (s *File) lease(id string, next func(cur *Lease) (Lease, error)) (Lease, error) {
	if err := checkID(id); err != nil {
		return Lease{}, err
	}
	mu := s.lockFor(id)
	mu.Lock()
	defer mu.Unlock()
	unlock, err := s.fenceLock(id)
	if err != nil {
		return Lease{}, err
	}
	defer unlock()
	cur, err := s.readLease(id)
	if err != nil {
		return Lease{}, err
	}
	granted, err := next(cur)
	if err != nil {
		return Lease{}, err
	}
	if err := s.writeLease(granted); err != nil {
		return Lease{}, err
	}
	return granted, nil
}

// readLease loads the session's lease record; nil when never leased.
func (s *File) readLease(id string) (*Lease, error) {
	data, err := os.ReadFile(s.leasePath(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading lease %s: %w", id, err)
	}
	l := &Lease{}
	if err := json.Unmarshal(data, l); err != nil {
		return nil, fmt.Errorf("%w: lease %s: %v", ErrCorrupt, id, err)
	}
	return l, nil
}

// writeLease durably publishes a lease record: temp + fsync + rename +
// dir fsync, the same discipline as snapshots, so a crash leaves either
// the old or the new lease, never a torn one.
func (s *File) writeLease(l Lease) error {
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("store: encoding lease %s: %w", l.ID, err)
	}
	tmp := s.leasePath(l.ID) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: writing lease %s: %w", l.ID, err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing lease %s: %w", l.ID, err)
	}
	if err := os.Rename(tmp, s.leasePath(l.ID)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing lease %s: %w", l.ID, err)
	}
	return s.syncDir()
}

// syncDir fsyncs the data directory, making renames and removals durable.
func (s *File) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: opening data dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: syncing data dir: %w", err)
	}
	return nil
}
