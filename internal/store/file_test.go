package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// reopen simulates a process restart: a fresh *File over the same
// directory, with none of the in-memory bookkeeping.
func reopen(t *testing.T, dir string, compactEvery int) *File {
	t.Helper()
	fs, err := NewFile(dir, compactEvery)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFileSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fs := reopen(t, dir, 0)
	rec := testRecord("sess-reopen")
	if err := fs.Put(rec); err != nil {
		t.Fatal(err)
	}
	op := Op{Kind: OpMerge, Version: 2, Tasks: []int{0}, Answers: []bool{true},
		Time: time.Unix(5000, 0).UTC()}
	if err := fs.Append(rec.ID, op); err != nil {
		t.Fatal(err)
	}

	// No Close, no flush: everything acknowledged must already be on disk.
	got, err := reopen(t, dir, 0).Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Clone()
	want.Ops = append(want.Ops, op)
	want.LastAccess = op.Time
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen lost state:\n got %+v\nwant %+v", got, want)
	}
}

// TestFileCorruptTailRecovers is the acceptance edge case: a log whose tail
// is garbage (torn write, disk scribble) must recover to the last good
// record, and the bad tail must be truncated so later appends extend valid
// state.
func TestFileCorruptTailRecovers(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail string
	}{
		{"garbage line", "{{{ not json\n"},
		{"torn line", `{"op":"merge","version":2,"tasks":[1],"an`}, // no newline
		{"version gap", `{"op":"merge","version":7,"tasks":[1],"answers":[true]}` + "\n"},
		{"unknown kind", `{"op":"select","version":2}` + "\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fs := reopen(t, dir, 0)
			rec := testRecord("sess-tail")
			rec.Ops = nil
			if err := fs.Put(rec); err != nil {
				t.Fatal(err)
			}
			good := []Op{
				{Kind: OpMerge, Version: 0, Tasks: []int{0}, Answers: []bool{true}},
				{Kind: OpMerge, Version: 1, Tasks: []int{2}, Answers: []bool{false}},
			}
			for _, op := range good {
				if err := fs.Append(rec.ID, op); err != nil {
					t.Fatal(err)
				}
			}
			logPath := filepath.Join(dir, rec.ID+".log")
			f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			fs2 := reopen(t, dir, 0)
			got, err := fs2.Get(rec.ID)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if len(got.Ops) != len(good) {
				t.Fatalf("recovered %d ops, want %d", len(got.Ops), len(good))
			}
			for i, op := range good {
				if got.Ops[i].Version != op.Version || !reflect.DeepEqual(got.Ops[i].Tasks, op.Tasks) {
					t.Fatalf("op %d corrupted: %+v", i, got.Ops[i])
				}
			}
			// The tail was repaired: the next append lands cleanly and a
			// fresh reopen sees it.
			next := Op{Kind: OpMerge, Version: 2, Tasks: []int{1}, Answers: []bool{true}}
			if err := fs2.Append(rec.ID, next); err != nil {
				t.Fatal(err)
			}
			got, err = reopen(t, dir, 0).Get(rec.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Ops) != 3 || got.Ops[2].Version != 2 {
				t.Fatalf("append after repair lost: %+v", got.Ops)
			}
		})
	}
}

func TestFileCompactionFoldsLog(t *testing.T) {
	dir := t.TempDir()
	fs := reopen(t, dir, 3)
	rec := testRecord("sess-compact")
	rec.Ops = nil
	if err := fs.Put(rec); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 7; v++ {
		if err := fs.Append(rec.ID, Op{Kind: OpMerge, Version: v, Tasks: []int{v % 3}, Answers: []bool{true}}); err != nil {
			t.Fatal(err)
		}
	}
	// 7 appends with compactEvery=3: two compactions happened, one op in
	// the live log.
	logData, err := os.ReadFile(filepath.Join(dir, rec.ID+".log"))
	if err != nil {
		t.Fatal(err)
	}
	var snap Record
	snapData, err := os.ReadFile(filepath.Join(dir, rec.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(snapData, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Ops) != 6 {
		t.Fatalf("snapshot holds %d ops after compaction, want 6", len(snap.Ops))
	}
	if n := len(splitLines(logData)); n != 1 {
		t.Fatalf("log holds %d ops after compaction, want 1", n)
	}
	got, err := reopen(t, dir, 3).Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 7 {
		t.Fatalf("compaction lost ops: %d, want 7", len(got.Ops))
	}
}

// TestFileCrashedCompactionHeals covers the crash window between writing
// the compacted snapshot and truncating the log: the stale log ops carry
// versions the snapshot already holds and must fold as no-ops.
func TestFileCrashedCompactionHeals(t *testing.T) {
	dir := t.TempDir()
	fs := reopen(t, dir, 0)
	rec := testRecord("sess-crashed")
	if err := fs.Put(rec); err != nil { // snapshot with ops 0 and 1 folded
		t.Fatal(err)
	}
	// Hand-write the log a crashed compaction would leave behind: ops 0-2,
	// of which 0 and 1 are already in the snapshot.
	var log []byte
	for _, op := range []Op{
		{Kind: OpMerge, Version: 0, Tasks: []int{0, 1}, Answers: []bool{true, false}},
		{Kind: OpMerge, Version: 1, Tasks: []int{2}, Answers: []bool{true}},
		{Kind: OpMerge, Version: 2, Tasks: []int{1}, Answers: []bool{true}},
	} {
		line, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, line...)
		log = append(log, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, rec.ID+".log"), log, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := reopen(t, dir, 0).Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 3 {
		t.Fatalf("healed record has %d ops, want 3", len(got.Ops))
	}
	for v, op := range got.Ops {
		if op.Version != v {
			t.Fatalf("op %d has version %d after healing", v, op.Version)
		}
	}
}

func TestFileListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	fs := reopen(t, dir, 0)
	if err := fs.Put(testRecord("sess-listed")); err != nil {
		t.Fatal(err)
	}
	// Leftover temp file from a crashed snapshot write, a log, and noise.
	for _, name := range []string{"sess-x.json.tmp", "sess-listed.log", "README"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "sess-listed" {
		t.Fatalf("List = %v, want [sess-listed]", ids)
	}
}

func TestFileLockExcludesSecondStore(t *testing.T) {
	dir := t.TempDir()
	fs1 := reopen(t, dir, 0)
	if err := fs1.Lock(); err != nil {
		t.Fatal(err)
	}
	// A second store over the same dir (separate file description, as a
	// second process would have) must be refused while fs1 holds the lock.
	fs2 := reopen(t, dir, 0)
	if err := fs2.Lock(); err == nil {
		t.Fatal("second store acquired the data-dir lock")
	}
	if err := fs1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Lock(); err != nil {
		t.Fatalf("lock not released by Close: %v", err)
	}
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}
	// Lock is idempotent on a held store.
	fs3 := reopen(t, dir, 0)
	if err := fs3.Lock(); err != nil {
		t.Fatal(err)
	}
	if err := fs3.Lock(); err != nil {
		t.Fatalf("re-Lock on the holder failed: %v", err)
	}
	fs3.Close()
	// The LOCK file is store bookkeeping, not a session.
	ids, err := fs3.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("List sees lock file: %v", ids)
	}
}

// TestFileAppendFencesSecondProcess covers the shared-data-dir discipline
// cluster mode relies on: when another process (here: a second *File over
// the same dir) appends to a session's log, this process's next Append
// must notice via the stat fence, resync from disk, and refuse a
// divergent version with ErrCorrupt instead of forking the history — and
// then continue correctly from the real head.
func TestFileAppendFencesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	a := reopen(t, dir, 0)
	defer a.Close()
	b := reopen(t, dir, 0)
	defer b.Close()

	rec := testRecord("sess-fence")
	rec.Ops = nil
	if err := a.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(rec.ID, Op{Kind: OpMerge, Version: 0, Tasks: []int{0}, Answers: []bool{true}}); err != nil {
		t.Fatal(err)
	}
	// Process B adopts the session (ownership flap) and appends v1.
	theirs := Op{Kind: OpMerge, Version: 1, Tasks: []int{2}, Answers: []bool{false}}
	if err := b.Append(rec.ID, theirs); err != nil {
		t.Fatal(err)
	}
	// Process A, whose bookkeeping still says nextVer=1, tries its own,
	// different v1: the fence must detect B's write and refuse.
	ours := Op{Kind: OpMerge, Version: 1, Tasks: []int{1}, Answers: []bool{true}}
	if err := a.Append(rec.ID, ours); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("divergent append = %v, want ErrCorrupt", err)
	}
	// A is resynced now: the in-order continuation lands.
	if err := a.Append(rec.ID, Op{Kind: OpMerge, Version: 2, Tasks: []int{0}, Answers: []bool{false}}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 3 || !reflect.DeepEqual(got.Ops[1].Tasks, theirs.Tasks) {
		t.Fatalf("history forked: %+v", got.Ops)
	}
}

func TestFileCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	fs := reopen(t, dir, 0)
	if err := os.WriteFile(filepath.Join(dir, "sess-bad.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get("sess-bad"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot Get = %v, want ErrCorrupt", err)
	}
}

// splitLines counts complete newline-terminated lines.
func splitLines(b []byte) [][]byte {
	var lines [][]byte
	for len(b) > 0 {
		i := -1
		for j, c := range b {
			if c == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			break
		}
		lines = append(lines, b[:i])
		b = b[i+1:]
	}
	return lines
}
