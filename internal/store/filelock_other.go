//go:build !unix

package store

// Lock is a no-op where flock is unavailable: single-writer discipline is
// the operator's responsibility on non-unix platforms.
func (s *File) Lock() error { return nil }

func (s *File) unlock() error { return nil }
