//go:build !unix

package store

// Lock is a no-op where flock is unavailable: single-writer discipline is
// the operator's responsibility on non-unix platforms.
func (s *File) Lock() error { return nil }

func (s *File) unlock() error { return nil }

// fenceLock is a no-op where flock is unavailable: the lease epoch check
// still runs, but without cross-process atomicity between the lease read
// and the write it gates — the in-process stripe lock is the only
// serialization.
func (s *File) fenceLock(id string) (func(), error) { return func() {}, nil }
