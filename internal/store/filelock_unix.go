//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Lock takes an exclusive advisory flock on <dir>/LOCK, failing fast if
// another process holds it. Two daemons pointed at one -data-dir would
// otherwise interleave writers with independent version bookkeeping and
// truncate each other's fsynced appends as "corrupt tails" — the exact
// data loss the store exists to prevent. The kernel releases the lock when
// the process dies (SIGKILL included), so crash-restart needs no cleanup.
//
// Locking is opt-in (the daemon calls it; tests that simulate crashes by
// opening a second store in the same process do not, since flock conflicts
// are per file description, not per process).
func (s *File) Lock() error {
	if s.lockFile != nil {
		return nil
	}
	f, err := os.OpenFile(filepath.Join(s.dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return fmt.Errorf("store: data dir %s is in use by another process: %w", s.dir, err)
	}
	s.lockFile = f
	return nil
}

// fenceLock takes the per-session cross-process fence: an exclusive
// blocking flock on <dir>/<id>.lock, held across a lease read plus the
// write it gates. This is what makes the epoch check atomic between
// processes sharing a data dir — a steal and a deposed owner's append
// serialize here, so whichever lands second sees the other's effect
// (the stale writer fences, the steal outranks). The returned func
// releases the lock.
func (s *File) fenceLock(id string) (func(), error) {
	f, err := os.OpenFile(s.fencePath(id), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening fence lock for %s: %w", id, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: locking fence for %s: %w", id, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}

// unlock releases the advisory lock (called from Close).
func (s *File) unlock() error {
	if s.lockFile == nil {
		return nil
	}
	f := s.lockFile
	s.lockFile = nil
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN); err != nil {
		f.Close()
		return fmt.Errorf("store: releasing lock file: %w", err)
	}
	return f.Close()
}
