package store

import (
	"errors"
	"fmt"
	"time"
)

// Per-session write leases.
//
// A lease names the one node allowed to write a session's history and
// carries a monotonic fencing Epoch. Every ownership change — a fresh
// acquisition, a takeover of an expired or released lease, a steal from a
// deposed holder — mints a strictly higher epoch, and every write
// (Append/Put) states the epoch it was issued under. The store refuses any
// write whose epoch is not the lease's current epoch with ErrFenced, which
// is what closes the dual-writer window PR 5 left open: a deposed owner
// whose ownership flapped away mid-request cannot fork the history, no
// matter how its request interleaves with the adopter's, because its epoch
// is stale the instant the adopter's acquisition lands.
//
// Expiry is deliberately NOT checked on writes. An expired lease that
// nobody has taken over still fences at its epoch — the holder keeps
// writing safely until a successor actually acquires. Expiry only bounds
// how long a successor must wait before taking over without proof that the
// holder is dead; liveness detection (the cluster ring) can justify an
// earlier steal, and the epoch makes either path safe even when clocks
// disagree about expiry.
//
// Sessions that never acquire a lease (single-node deployments, the
// default) see no behavior change: with no lease record, epoch-0 writes
// pass untouched. Once a lease exists its epoch fences forever — release
// clears the holder but keeps the epoch, so an in-flight write from a
// released incarnation still bounces.

// Lease is the fencing record for one session.
type Lease struct {
	ID string `json:"id"`
	// Owner is the holder's advertised address, or "" after release.
	Owner string `json:"owner"`
	// Epoch is the monotonic fencing token. It starts at 1 and increases
	// on every change of holder; it never decreases or resets, even across
	// release/re-acquire cycles.
	Epoch uint64 `json:"epoch"`
	// Expires is when a successor may take the lease over without a steal.
	Expires time.Time `json:"expires"`
}

// Expired reports whether the lease no longer protects its holder from a
// plain re-acquisition: released, or past its expiry.
func (l *Lease) Expired(now time.Time) bool {
	return l.Owner == "" || !l.Expires.After(now)
}

// Lease errors.
var (
	// ErrFenced is returned when a write (or renewal) carries a stale
	// fencing epoch: another node acquired the session's lease after the
	// writer did. It is the lease-lost signal — the session's history is
	// intact, but this writer may no longer extend it. Contrast ErrCorrupt,
	// which means the history itself diverged or cannot be decoded.
	ErrFenced = errors.New("store: write fenced: session lease superseded")
	// ErrLeaseHeld is returned by AcquireLease when another holder's
	// unexpired lease is in the way. The caller decides whether to wait for
	// expiry, redirect to the holder, or StealLease (when liveness
	// information says the holder is gone).
	ErrLeaseHeld = errors.New("store: session lease held by another owner")
)

// FencedError is the structured form of ErrFenced: which session, the
// stale epoch the write carried, and the lease that outranks it (whose
// Owner is where the traffic should go).
type FencedError struct {
	ID         string
	WriteEpoch uint64
	Lease      Lease
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("store: write fenced: session %s epoch %d superseded by %q at epoch %d",
		e.ID, e.WriteEpoch, e.Lease.Owner, e.Lease.Epoch)
}

func (e *FencedError) Unwrap() error { return ErrFenced }

// LeaseHeldError is the structured form of ErrLeaseHeld, carrying the
// blocking lease.
type LeaseHeldError struct {
	Lease Lease
}

func (e *LeaseHeldError) Error() string {
	return fmt.Sprintf("store: session %s lease held by %q (epoch %d) until %s",
		e.Lease.ID, e.Lease.Owner, e.Lease.Epoch, e.Lease.Expires.Format(time.RFC3339Nano))
}

func (e *LeaseHeldError) Unwrap() error { return ErrLeaseHeld }

// grantLease computes the successor of cur for owner: the shared
// state-machine both stores implement. steal bypasses the held check.
func grantLease(cur *Lease, id, owner string, ttl time.Duration, now time.Time, steal bool) (Lease, error) {
	if owner == "" {
		return Lease{}, errors.New("store: lease owner must be non-empty")
	}
	if ttl <= 0 {
		return Lease{}, errors.New("store: lease ttl must be positive")
	}
	next := Lease{ID: id, Owner: owner, Expires: now.Add(ttl)}
	switch {
	case cur == nil:
		next.Epoch = 1
	case cur.Owner == owner:
		// Same holder re-acquiring (or refreshing): the incarnation did not
		// change, so the epoch must not either — bumping it would fence the
		// holder's own in-flight writes.
		next.Epoch = cur.Epoch
	case cur.Expired(now) || steal:
		next.Epoch = cur.Epoch + 1
	default:
		return Lease{}, &LeaseHeldError{Lease: *cur}
	}
	return next, nil
}

// checkFence is the write gate shared by both stores: a write is admitted
// only when its epoch matches the session's current lease epoch (or when
// the session has never been leased and the write carries no epoch).
func checkFence(id string, writeEpoch uint64, cur *Lease) error {
	if cur == nil {
		if writeEpoch == 0 {
			return nil
		}
		// An epoch was minted but the lease record is gone — the session
		// was deleted and recreated, or the store lost the lease. Refusing
		// is the safe reading: the writer's view of the session is stale.
		return &FencedError{ID: id, WriteEpoch: writeEpoch}
	}
	if writeEpoch == cur.Epoch {
		return nil
	}
	return &FencedError{ID: id, WriteEpoch: writeEpoch, Lease: *cur}
}

// renewLease validates a renewal against the current lease: same holder,
// same epoch, or the renewal is fenced.
func renewLease(cur *Lease, id, owner string, epoch uint64, ttl time.Duration, now time.Time) (Lease, error) {
	if cur == nil || cur.Owner != owner || cur.Epoch != epoch {
		fe := &FencedError{ID: id, WriteEpoch: epoch}
		if cur != nil {
			fe.Lease = *cur
		}
		return Lease{}, fe
	}
	next := *cur
	next.Expires = now.Add(ttl)
	return next, nil
}

// releaseLease validates a release: clearing the holder but keeping the
// epoch, so the fence outlives the incarnation. Releasing a lease that was
// already superseded reports ErrFenced (the caller usually just logs it);
// releasing a never-leased session is a no-op.
func releaseLease(cur *Lease, id, owner string, epoch uint64) (*Lease, error) {
	if cur == nil {
		return nil, nil
	}
	if cur.Owner != owner || cur.Epoch != epoch {
		return nil, &FencedError{ID: id, WriteEpoch: epoch, Lease: *cur}
	}
	next := *cur
	next.Owner = ""
	next.Expires = time.Time{}
	return &next, nil
}
