package store

import (
	"errors"
	"testing"
	"time"
)

// Lease conformance: both stores must implement the same fencing algebra —
// epochs bump only on holder change, writes carry the epoch they were
// stamped with, and a superseded epoch is refused with ErrFenced.

func leaseClock() time.Time { return time.Unix(5000, 0).UTC() }

func TestConformanceLeaseAcquireRenewRelease(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		now := leaseClock()
		l, err := s.AcquireLease("sess-lease", "node-a", time.Minute, now)
		if err != nil {
			t.Fatal(err)
		}
		if l.Epoch != 1 || l.Owner != "node-a" || !l.Expires.Equal(now.Add(time.Minute)) {
			t.Fatalf("first acquire: %+v", l)
		}
		// Re-acquire by the same owner is a refresh, not a new incarnation:
		// the epoch must not move, or the holder would fence itself.
		l2, err := s.AcquireLease("sess-lease", "node-a", time.Minute, now.Add(time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if l2.Epoch != 1 {
			t.Fatalf("same-owner re-acquire bumped epoch to %d", l2.Epoch)
		}
		// Renewal extends the expiry at the same epoch.
		l3, err := s.RenewLease("sess-lease", "node-a", 1, time.Minute, now.Add(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if l3.Epoch != 1 || !l3.Expires.Equal(now.Add(90*time.Second)) {
			t.Fatalf("renew: %+v", l3)
		}
		got, err := s.GetLease("sess-lease")
		if err != nil || got == nil {
			t.Fatalf("GetLease: %v %v", got, err)
		}
		if got.Epoch != 1 || got.Owner != "node-a" {
			t.Fatalf("GetLease: %+v", got)
		}
		// Release clears the owner but keeps the epoch as a permanent
		// fence; the next acquisition must outrank every write the old
		// holder ever stamped.
		if err := s.ReleaseLease("sess-lease", "node-a", 1); err != nil {
			t.Fatal(err)
		}
		got, err = s.GetLease("sess-lease")
		if err != nil || got == nil {
			t.Fatalf("GetLease after release: %v %v", got, err)
		}
		if got.Owner != "" || got.Epoch != 1 {
			t.Fatalf("release must keep the epoch fence: %+v", got)
		}
		l4, err := s.AcquireLease("sess-lease", "node-b", time.Minute, now.Add(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if l4.Epoch != 2 || l4.Owner != "node-b" {
			t.Fatalf("acquire after release: %+v", l4)
		}
	})
}

func TestConformanceLeaseHeldExpiryAndSteal(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		now := leaseClock()
		if _, err := s.AcquireLease("sess-steal", "node-a", time.Minute, now); err != nil {
			t.Fatal(err)
		}
		// A live lease blocks plain acquisition, reporting the holder.
		_, err := s.AcquireLease("sess-steal", "node-b", time.Minute, now.Add(time.Second))
		var heldErr *LeaseHeldError
		if !errors.As(err, &heldErr) || !errors.Is(err, ErrLeaseHeld) {
			t.Fatalf("want LeaseHeldError, got %v", err)
		}
		if heldErr.Lease.Owner != "node-a" || heldErr.Lease.Epoch != 1 {
			t.Fatalf("held error lease: %+v", heldErr.Lease)
		}
		// Steal outranks the live holder: new owner, bumped epoch.
		l, err := s.StealLease("sess-steal", "node-b", time.Minute, now.Add(time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if l.Epoch != 2 || l.Owner != "node-b" {
			t.Fatalf("steal: %+v", l)
		}
		// The deposed holder's renewal is fenced, not merely refused.
		_, err = s.RenewLease("sess-steal", "node-a", 1, time.Minute, now.Add(2*time.Second))
		var fencedErr *FencedError
		if !errors.As(err, &fencedErr) || !errors.Is(err, ErrFenced) {
			t.Fatalf("deposed renew: want FencedError, got %v", err)
		}
		// An expired lease needs no steal: plain acquisition takes over
		// with an epoch bump.
		l2, err := s.AcquireLease("sess-steal", "node-c", time.Minute, now.Add(10*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if l2.Epoch != 3 || l2.Owner != "node-c" {
			t.Fatalf("acquire after expiry: %+v", l2)
		}
	})
}

func TestConformanceFencedAppendAndPut(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		now := leaseClock()
		rec := testRecord("sess-fence")
		rec.LeaseEpoch = 1
		if _, err := s.AcquireLease("sess-fence", "node-a", time.Minute, now); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		if err := s.Append("sess-fence", Op{Kind: OpMerge, Version: 2, Tasks: []int{0}, Answers: []bool{true}, Epoch: 1}); err != nil {
			t.Fatal(err)
		}
		// Another node steals the lease: every write still stamped with
		// the old epoch must be refused — this is the dual-writer window
		// closing.
		if _, err := s.StealLease("sess-fence", "node-b", time.Minute, now.Add(time.Second)); err != nil {
			t.Fatal(err)
		}
		err := s.Append("sess-fence", Op{Kind: OpMerge, Version: 3, Tasks: []int{1}, Answers: []bool{false}, Epoch: 1})
		var fencedErr *FencedError
		if !errors.As(err, &fencedErr) || !errors.Is(err, ErrFenced) {
			t.Fatalf("stale append: want FencedError, got %v", err)
		}
		if fencedErr.WriteEpoch != 1 || fencedErr.Lease.Epoch != 2 || fencedErr.Lease.Owner != "node-b" {
			t.Fatalf("fenced detail: %+v", fencedErr)
		}
		if err := s.Put(rec); !errors.Is(err, ErrFenced) {
			t.Fatalf("stale put: want ErrFenced, got %v", err)
		}
		// Epoch-0 writes (a node running with leasing disabled) are fenced
		// too once any lease exists: mixed deployments cannot bypass the
		// gate.
		if err := s.Append("sess-fence", Op{Kind: OpMerge, Version: 3, Tasks: []int{1}, Answers: []bool{false}}); !errors.Is(err, ErrFenced) {
			t.Fatalf("epoch-0 append under lease: want ErrFenced, got %v", err)
		}
		// The new holder's writes pass, and the refused op left no trace.
		if err := s.Append("sess-fence", Op{Kind: OpMerge, Version: 3, Tasks: []int{2}, Answers: []bool{true}, Epoch: 2}); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("sess-fence")
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Ops) != 4 || got.Ops[3].Epoch != 2 || got.Ops[3].Tasks[0] != 2 {
			t.Fatalf("history after fence: %+v", got.Ops)
		}
	})
}

func TestConformanceLeaseValidation(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		now := leaseClock()
		if _, err := s.AcquireLease("bad/id", "node-a", time.Minute, now); !errors.Is(err, ErrBadID) {
			t.Fatalf("bad id: %v", err)
		}
		if _, err := s.AcquireLease("sess-v", "", time.Minute, now); err == nil {
			t.Fatal("empty owner accepted")
		}
		if _, err := s.AcquireLease("sess-v", "node-a", 0, now); err == nil {
			t.Fatal("zero ttl accepted")
		}
		// Renewing a lease that was never granted is a fence violation:
		// the caller's belief about its own epoch is already wrong.
		if _, err := s.RenewLease("sess-v", "node-a", 1, time.Minute, now); !errors.Is(err, ErrFenced) {
			t.Fatalf("renew of absent lease: %v", err)
		}
		got, err := s.GetLease("sess-v")
		if err != nil || got != nil {
			t.Fatalf("GetLease of absent lease: %v %v", got, err)
		}
		// Releasing an absent lease is a no-op (release races a delete).
		if err := s.ReleaseLease("sess-v", "node-a", 1); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceDeleteRemovesLease(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		now := leaseClock()
		rec := testRecord("sess-del")
		rec.LeaseEpoch = 1
		if _, err := s.AcquireLease("sess-del", "node-a", time.Minute, now); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Delete("sess-del"); err != nil {
			t.Fatal(err)
		}
		got, err := s.GetLease("sess-del")
		if err != nil || got != nil {
			t.Fatalf("lease survived delete: %v %v", got, err)
		}
		// A reused ID starts a fresh fencing history.
		l, err := s.AcquireLease("sess-del", "node-b", time.Minute, now)
		if err != nil {
			t.Fatal(err)
		}
		if l.Epoch != 1 {
			t.Fatalf("lease epoch survived delete: %+v", l)
		}
	})
}

// TestFileLeaseSurvivesReopen is File-specific: the lease record is durably
// co-located with the session, so the fence holds across a crash-restart —
// a revived deposed owner stays fenced.
func TestFileLeaseSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	now := leaseClock()
	fs, err := NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("sess-reopen")
	rec.LeaseEpoch = 1
	if _, err := fs.AcquireLease("sess-reopen", "node-a", time.Minute, now); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StealLease("sess-reopen", "node-b", time.Minute, now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, err := fs2.GetLease("sess-reopen")
	if err != nil || got == nil {
		t.Fatalf("GetLease after reopen: %v %v", got, err)
	}
	if got.Owner != "node-b" || got.Epoch != 2 {
		t.Fatalf("lease after reopen: %+v", got)
	}
	// The old incarnation's epoch stays fenced across the restart.
	err = fs2.Append("sess-reopen", Op{Kind: OpMerge, Version: 2, Tasks: []int{0}, Answers: []bool{true}, Epoch: 1})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale epoch after reopen: want ErrFenced, got %v", err)
	}
	if err := fs2.Append("sess-reopen", Op{Kind: OpMerge, Version: 2, Tasks: []int{0}, Answers: []bool{true}, Epoch: 2}); err != nil {
		t.Fatal(err)
	}
}
