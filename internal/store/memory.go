package store

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Memory is the volatile SessionStore: records live in a map and vanish
// with the process. It exists so the service always runs behind the same
// store interface — and so the conformance suite can hold both
// implementations to one contract.
//
// The records it holds are never reloaded in practice (volatile eviction
// deletes them first and a restart empties the map); keeping them anyway
// is a deliberate trade-off — one persistence code path, identically
// exercised whichever store is configured — paid for with a record clone
// per create and an op clone per merge, both small next to the posterior
// conditioning a merge already performs.
type Memory struct {
	mu     sync.RWMutex
	recs   map[string]*Record
	leases map[string]*Lease
}

// NewMemory builds an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{recs: make(map[string]*Record), leases: make(map[string]*Lease)}
}

// Durable reports false: a restart loses everything.
func (s *Memory) Durable() bool { return false }

// Put stores a deep copy of the record, replacing any previous state.
func (s *Memory) Put(rec *Record) error {
	if err := checkID(rec.ID); err != nil {
		return err
	}
	if err := rec.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := checkFence(rec.ID, rec.LeaseEpoch, s.leases[rec.ID]); err != nil {
		return err
	}
	s.recs[rec.ID] = rec.Clone()
	return nil
}

// Append folds one op into the stored record. Ops are folded eagerly —
// there is no separate log to compact in memory. Like the file store,
// appends must extend the record in strict version order: a stale version
// means a divergent second writer, not a retry (retries are deduplicated
// in memory before they reach the store).
func (s *Memory) Append(id string, op Op) error {
	if err := checkID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, id)
	}
	if err := checkFence(id, op.Epoch, s.leases[id]); err != nil {
		return err
	}
	if op.Kind == OpObserve && op.Seq != len(rec.Observations) {
		// The fold-time skip for already-folded observations exists for log
		// replay over a compacted snapshot; a live append at a stale Seq is
		// a divergent writer and must not be silently acknowledged.
		return fmt.Errorf("%w: observe op seq %d does not extend %d observations",
			ErrCorrupt, op.Seq, len(rec.Observations))
	}
	if op.Version != len(rec.Ops) || !rec.fold(op) {
		return fmt.Errorf("%w: op %q version %d does not extend %d applied ops",
			ErrCorrupt, op.Kind, op.Version, len(rec.Ops))
	}
	return nil
}

// Get returns a deep copy of the record.
func (s *Memory) Get(id string) (*Record, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.recs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, id)
	}
	return rec.Clone(), nil
}

// Delete removes the record.
func (s *Memory) Delete(id string) (bool, error) {
	if err := checkID(id); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.recs[id]
	delete(s.recs, id)
	delete(s.leases, id)
	return ok, nil
}

// List returns every stored ID in lexicographic order.
func (s *Memory) List() ([]string, error) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.recs))
	for id := range s.recs {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids, nil
}

// Close is a no-op.
func (s *Memory) Close() error { return nil }

// AcquireLease takes or refreshes the session's write lease.
func (s *Memory) AcquireLease(id, owner string, ttl time.Duration, now time.Time) (Lease, error) {
	return s.lease(id, func(cur *Lease) (Lease, error) {
		return grantLease(cur, id, owner, ttl, now, false)
	})
}

// StealLease takes the lease unconditionally at a higher epoch.
func (s *Memory) StealLease(id, owner string, ttl time.Duration, now time.Time) (Lease, error) {
	return s.lease(id, func(cur *Lease) (Lease, error) {
		return grantLease(cur, id, owner, ttl, now, true)
	})
}

// RenewLease extends the holder's lease, fencing stale holders.
func (s *Memory) RenewLease(id, owner string, epoch uint64, ttl time.Duration, now time.Time) (Lease, error) {
	return s.lease(id, func(cur *Lease) (Lease, error) {
		return renewLease(cur, id, owner, epoch, ttl, now)
	})
}

// ReleaseLease clears the holder, keeping the epoch fence.
func (s *Memory) ReleaseLease(id, owner string, epoch uint64) error {
	if err := checkID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next, err := releaseLease(s.leases[id], id, owner, epoch)
	if err != nil {
		return err
	}
	if next != nil {
		s.leases[id] = next
	}
	return nil
}

// GetLease returns the current lease, or nil when never leased.
func (s *Memory) GetLease(id string) (*Lease, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	cur, ok := s.leases[id]
	if !ok {
		return nil, nil
	}
	c := *cur
	return &c, nil
}

// lease runs one lease transition under the store lock.
func (s *Memory) lease(id string, next func(cur *Lease) (Lease, error)) (Lease, error) {
	if err := checkID(id); err != nil {
		return Lease{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	granted, err := next(s.leases[id])
	if err != nil {
		return Lease{}, err
	}
	s.leases[id] = &granted
	return granted, nil
}
