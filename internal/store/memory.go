package store

import (
	"fmt"
	"sort"
	"sync"
)

// Memory is the volatile SessionStore: records live in a map and vanish
// with the process. It exists so the service always runs behind the same
// store interface — and so the conformance suite can hold both
// implementations to one contract.
//
// The records it holds are never reloaded in practice (volatile eviction
// deletes them first and a restart empties the map); keeping them anyway
// is a deliberate trade-off — one persistence code path, identically
// exercised whichever store is configured — paid for with a record clone
// per create and an op clone per merge, both small next to the posterior
// conditioning a merge already performs.
type Memory struct {
	mu   sync.RWMutex
	recs map[string]*Record
}

// NewMemory builds an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{recs: make(map[string]*Record)}
}

// Durable reports false: a restart loses everything.
func (s *Memory) Durable() bool { return false }

// Put stores a deep copy of the record, replacing any previous state.
func (s *Memory) Put(rec *Record) error {
	if err := checkID(rec.ID); err != nil {
		return err
	}
	if err := rec.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[rec.ID] = rec.Clone()
	return nil
}

// Append folds one op into the stored record. Ops are folded eagerly —
// there is no separate log to compact in memory. Like the file store,
// appends must extend the record in strict version order: a stale version
// means a divergent second writer, not a retry (retries are deduplicated
// in memory before they reach the store).
func (s *Memory) Append(id string, op Op) error {
	if err := checkID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, id)
	}
	if op.Version != len(rec.Ops) || !rec.fold(op) {
		return fmt.Errorf("%w: op %q version %d does not extend %d applied ops",
			ErrCorrupt, op.Kind, op.Version, len(rec.Ops))
	}
	return nil
}

// Get returns a deep copy of the record.
func (s *Memory) Get(id string) (*Record, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.recs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, id)
	}
	return rec.Clone(), nil
}

// Delete removes the record.
func (s *Memory) Delete(id string) (bool, error) {
	if err := checkID(id); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.recs[id]
	delete(s.recs, id)
	return ok, nil
}

// List returns every stored ID in lexicographic order.
func (s *Memory) List() ([]string, error) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.recs))
	for id := range s.recs {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids, nil
}

// Close is a no-op.
func (s *Memory) Close() error { return nil }
