package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// obsOp builds an OpObserve extending a record with obs observations at
// version v.
func obsOp(v, seq int, tasks []int, answers []bool, workers, sources []string) Op {
	return Op{
		Kind: OpObserve, Version: v, Seq: seq,
		Tasks: tasks, Answers: answers, Workers: workers, Sources: sources,
		Time: time.Unix(2000, 0).UTC(),
	}
}

// TestConformanceObserveFoldsIntoGet: OpObserve appends attributed
// observations without advancing the version — the paired OpMerge still
// extends the op log at the same version afterwards.
func TestConformanceObserveFoldsIntoGet(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-observe")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		// testRecord has two folded merges, so the live version is 2.
		if err := s.Append(rec.ID, obsOp(2, 0,
			[]int{0, 1}, []bool{true, false},
			[]string{"w1", "w2"}, []string{"mturk", "mturk"})); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(rec.ID, obsOp(2, 2,
			[]int{2}, []bool{true}, []string{"w1"}, nil)); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		want := []Observation{
			{Task: 0, Answer: true, Worker: "w1", Source: "mturk", Version: 2, Time: time.Unix(2000, 0).UTC()},
			{Task: 1, Answer: false, Worker: "w2", Source: "mturk", Version: 2, Time: time.Unix(2000, 0).UTC()},
			{Task: 2, Answer: true, Worker: "w1", Version: 2, Time: time.Unix(2000, 0).UTC()},
		}
		if !reflect.DeepEqual(got.Observations, want) {
			t.Fatalf("observations:\n got %+v\nwant %+v", got.Observations, want)
		}
		if len(got.Ops) != 2 {
			t.Fatalf("observe advanced the version: %d ops", len(got.Ops))
		}
		// The merge these observations condition still lands at version 2.
		if err := s.Append(rec.ID, Op{Kind: OpMerge, Version: 2,
			Tasks: []int{0, 1, 2}, Answers: []bool{true, false, true}}); err != nil {
			t.Fatal(err)
		}
		got, err = s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Ops) != 3 || len(got.Observations) != 3 {
			t.Fatalf("after merge: %d ops, %d observations", len(got.Ops), len(got.Observations))
		}
	})
}

// TestConformanceObserveSeqGate: a live append whose Seq does not extend
// the observation count is a divergent writer and must be rejected, not
// silently acknowledged — the fold-time skip exists only for log replay
// over a compacted snapshot.
func TestConformanceObserveSeqGate(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-observe-seq")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		// Gapped: seq 1 when no observations exist.
		err := s.Append(rec.ID, obsOp(2, 1, []int{0}, []bool{true}, []string{"w1"}, nil))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("gapped seq: err = %v, want ErrCorrupt", err)
		}
		if err := s.Append(rec.ID, obsOp(2, 0, []int{0}, []bool{true}, []string{"w1"}, nil)); err != nil {
			t.Fatal(err)
		}
		// Stale: replaying seq 0 against one folded observation.
		err = s.Append(rec.ID, obsOp(2, 0, []int{0}, []bool{true}, []string{"w1"}, nil))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("stale seq: err = %v, want ErrCorrupt", err)
		}
		// Wrong version (op log is at 2).
		err = s.Append(rec.ID, obsOp(1, 1, []int{1}, []bool{true}, []string{"w1"}, nil))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("stale version: err = %v, want ErrCorrupt", err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Observations) != 1 {
			t.Fatalf("rejected appends leaked: %+v", got.Observations)
		}
	})
}

// TestConformanceObserveShapeRejected: malformed observe ops — anonymous
// workers, unpaired slices — are corrupt, in both stores.
func TestConformanceObserveShapeRejected(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-observe-shape")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		bad := []Op{
			obsOp(2, 0, []int{0}, []bool{true}, []string{""}, nil),                  // anonymous
			obsOp(2, 0, []int{0, 1}, []bool{true, false}, []string{"w1"}, nil),      // unpaired workers
			obsOp(2, 0, []int{0}, []bool{true}, []string{"w1"}, []string{"a", "b"}), // unpaired sources
			obsOp(2, 0, nil, nil, nil, nil),                                         // empty
		}
		for i, op := range bad {
			if err := s.Append(rec.ID, op); !errors.Is(err, ErrCorrupt) {
				t.Errorf("bad op %d: err = %v, want ErrCorrupt", i, err)
			}
		}
	})
}

// TestConformanceObserveOrderingWithPartialLedger: observations interleave
// with the pending ledger during an incremental round. The committing
// merge clears the ledger but never the observation history — replay must
// see every attributed judgment that conditioned the posterior.
func TestConformanceObserveOrderingWithPartialLedger(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-observe-partial")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		steps := []Op{
			obsOp(2, 0, []int{3}, []bool{true}, []string{"w1"}, nil),
			{Kind: OpPartial, Version: 2, Batch: []int{3, 4, 5}, Tasks: []int{3}, Answers: []bool{true}},
			obsOp(2, 1, []int{4}, []bool{false}, []string{"w2"}, nil),
			{Kind: OpPartial, Version: 2, Batch: []int{3, 4, 5}, Tasks: []int{4}, Answers: []bool{false}},
		}
		for i, op := range steps {
			if err := s.Append(rec.ID, op); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.PendingTasks, []int{3, 4}) {
			t.Fatalf("ledger = %v", got.PendingTasks)
		}
		if len(got.Observations) != 2 || got.Observations[0].Worker != "w1" || got.Observations[1].Worker != "w2" {
			t.Fatalf("observations = %+v", got.Observations)
		}
		// The batch completes: observe the last judgment, then merge.
		if err := s.Append(rec.ID, obsOp(2, 2, []int{5}, []bool{true}, []string{"w1"}, nil)); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(rec.ID, Op{Kind: OpMerge, Version: 2,
			Tasks: []int{3, 4, 5}, Answers: []bool{true, false, true}}); err != nil {
			t.Fatal(err)
		}
		got, err = s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.PendingBatch != nil || got.PendingTasks != nil {
			t.Fatalf("merge left a ledger: %v / %v", got.PendingBatch, got.PendingTasks)
		}
		if len(got.Observations) != 3 {
			t.Fatalf("merge dropped observations: %+v", got.Observations)
		}
	})
}

// TestConformancePutValidatesObservations: snapshots with corrupt
// observation histories are refused up front.
func TestConformancePutValidatesObservations(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		for name, obs := range map[string][]Observation{
			"anonymous":          {{Task: 0, Answer: true, Version: 0}},
			"negative task":      {{Task: -1, Answer: true, Worker: "w1", Version: 0}},
			"version beyond ops": {{Task: 0, Answer: true, Worker: "w1", Version: 3}},
			"decreasing versions": {
				{Task: 0, Answer: true, Worker: "w1", Version: 2},
				{Task: 1, Answer: true, Worker: "w1", Version: 1},
			},
		} {
			rec := testRecord("sess-observe-put")
			rec.Observations = obs
			if err := s.Put(rec); !errors.Is(err, ErrCorrupt) {
				t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
			}
		}
		// A well-formed history round-trips, including through snapshots.
		rec := testRecord("sess-observe-put")
		rec.WorkerModel = "em"
		rec.Observations = []Observation{
			{Task: 0, Answer: true, Worker: "w1", Source: "sim", Version: 1},
			{Task: 2, Answer: false, Worker: "w2", Version: 2},
		}
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.WorkerModel != "em" || !reflect.DeepEqual(got.Observations, rec.Observations) {
			t.Fatalf("round trip:\n got %q %+v\nwant %q %+v",
				got.WorkerModel, got.Observations, rec.WorkerModel, rec.Observations)
		}
	})
}

// TestFileObserveSurvivesRestart: observe ops are fsynced before Append
// acknowledges, so an acknowledged observation survives SIGKILL (simulated
// by reopening the directory without Close).
func TestFileObserveSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fs := reopen(t, dir, 0)
	rec := testRecord("sess-observe-kill")
	if err := fs.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(rec.ID, obsOp(2, 0,
		[]int{0, 2}, []bool{true, false}, []string{"w1", "w2"}, []string{"sim", "sim"})); err != nil {
		t.Fatal(err)
	}
	// No Close: the reopened store must see the synced log alone.
	got, err := reopen(t, dir, 0).Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Observations) != 2 || got.Observations[1].Worker != "w2" {
		t.Fatalf("restart lost observations: %+v", got.Observations)
	}
}

// TestFileObserveTornTailRecovers: a torn observe line at the log tail is
// truncated like any other torn op, recovering every previously
// acknowledged observation and accepting fresh appends.
func TestFileObserveTornTailRecovers(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail string
	}{
		{"torn observe", `{"op":"observe","version":2,"seq":1,"tasks":[1],"answ`},
		{"gapped seq", `{"op":"observe","version":2,"seq":5,"tasks":[1],"answers":[true],"workers":["w9"]}` + "\n"},
		{"anonymous worker", `{"op":"observe","version":2,"seq":1,"tasks":[1],"answers":[true],"workers":[""]}` + "\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fs := reopen(t, dir, 0)
			rec := testRecord("sess-observe-torn")
			if err := fs.Put(rec); err != nil {
				t.Fatal(err)
			}
			if err := fs.Append(rec.ID, obsOp(2, 0,
				[]int{0}, []bool{true}, []string{"w1"}, nil)); err != nil {
				t.Fatal(err)
			}
			logPath := filepath.Join(dir, rec.ID+".log")
			f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			fs2 := reopen(t, dir, 0)
			got, err := fs2.Get(rec.ID)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if len(got.Observations) != 1 || got.Observations[0].Worker != "w1" {
				t.Fatalf("recovered observations: %+v", got.Observations)
			}
			// The tail was repaired: the next observe extends cleanly.
			if err := fs2.Append(rec.ID, obsOp(2, 1,
				[]int{1}, []bool{false}, []string{"w2"}, nil)); err != nil {
				t.Fatal(err)
			}
			got, err = reopen(t, dir, 0).Get(rec.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Observations) != 2 {
				t.Fatalf("append after repair lost: %+v", got.Observations)
			}
		})
	}
}
