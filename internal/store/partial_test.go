package store

import (
	"errors"
	"reflect"
	"testing"
)

// TestConformancePartialOpsFoldIntoPending: partial ops accumulate a
// pending ledger without advancing the version, and the committing merge
// clears it.
func TestConformancePartialOpsFoldIntoPending(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-partial")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		// Two partial judgments against a three-task batch at version 2.
		batch := []int{0, 1, 2}
		if err := s.Append(rec.ID, Op{Kind: OpPartial, Version: 2, Tasks: []int{1}, Answers: []bool{true}, Batch: batch}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(rec.ID, Op{Kind: OpPartial, Version: 2, Tasks: []int{0}, Answers: []bool{false}, Batch: batch}); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Ops) != 2 {
			t.Fatalf("partials advanced the version: %d ops", len(got.Ops))
		}
		if !reflect.DeepEqual(got.PendingBatch, batch) ||
			!reflect.DeepEqual(got.PendingTasks, []int{1, 0}) ||
			!reflect.DeepEqual(got.PendingAnswers, []bool{true, false}) {
			t.Fatalf("pending ledger %v/%v/%v", got.PendingBatch, got.PendingTasks, got.PendingAnswers)
		}
		// The committing merge carries the whole batch at the same version
		// and clears the ledger.
		if err := s.Append(rec.ID, Op{Kind: OpMerge, Version: 2, Tasks: batch, Answers: []bool{false, true, true}}); err != nil {
			t.Fatal(err)
		}
		got, err = s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Ops) != 3 || got.PendingBatch != nil || got.PendingTasks != nil || got.PendingAnswers != nil {
			t.Fatalf("commit did not clear the ledger: %d ops, pending %v", len(got.Ops), got.PendingBatch)
		}
	})
}

// TestConformancePartialOpValidation: malformed partials are rejected at
// append time, never half-applied.
func TestConformancePartialOpValidation(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-partial-bad")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		batch := []int{0, 1, 2}
		bad := []Op{
			// No batch.
			{Kind: OpPartial, Version: 2, Tasks: []int{0}, Answers: []bool{true}},
			// Unpaired judgments.
			{Kind: OpPartial, Version: 2, Tasks: []int{0, 1}, Answers: []bool{true}, Batch: batch},
			// Wrong version.
			{Kind: OpPartial, Version: 5, Tasks: []int{0}, Answers: []bool{true}, Batch: batch},
			// Task outside the batch.
			{Kind: OpPartial, Version: 2, Tasks: []int{7}, Answers: []bool{true}, Batch: batch},
			// Covers the whole batch: a complete ledger must arrive as its
			// OpMerge, never as partials (the strict-subset invariant).
			{Kind: OpPartial, Version: 2, Tasks: batch, Answers: []bool{true, true, true}, Batch: batch},
		}
		for i, op := range bad {
			if err := s.Append(rec.ID, op); err == nil {
				t.Fatalf("bad partial %d accepted: %+v", i, op)
			}
		}
		// Duplicate judgment across two appends: second must fail.
		if err := s.Append(rec.ID, Op{Kind: OpPartial, Version: 2, Tasks: []int{0}, Answers: []bool{true}, Batch: batch}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(rec.ID, Op{Kind: OpPartial, Version: 2, Tasks: []int{0}, Answers: []bool{false}, Batch: batch}); err == nil {
			t.Fatal("duplicate pending judgment accepted")
		}
		// Second fresh judgment completing the batch as partials: rejected.
		if err := s.Append(rec.ID, Op{Kind: OpPartial, Version: 2, Tasks: []int{1, 2}, Answers: []bool{true, false}, Batch: batch}); err == nil {
			t.Fatal("ledger-completing partial accepted")
		}
		// The record is still readable and unchanged beyond the one good op.
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.PendingTasks, []int{0}) {
			t.Fatalf("pending after rejections: %v", got.PendingTasks)
		}
	})
}

// TestConformancePutValidatesPending: a snapshot whose ledger breaks the
// invariants (complete coverage, unpaired slices) is refused.
func TestConformancePutValidatesPending(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-pending-snapshot")
		rec.PendingBatch = []int{0, 1}
		rec.PendingTasks = []int{0}
		rec.PendingAnswers = []bool{true}
		if err := s.Put(rec); err != nil {
			t.Fatalf("valid pending snapshot refused: %v", err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.PendingBatch, rec.PendingBatch) || !reflect.DeepEqual(got.PendingTasks, rec.PendingTasks) {
			t.Fatalf("pending snapshot round trip: %+v", got)
		}

		complete := testRecord("sess-pending-complete")
		complete.PendingBatch = []int{0, 1}
		complete.PendingTasks = []int{0, 1}
		complete.PendingAnswers = []bool{true, false}
		if err := s.Put(complete); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("complete ledger snapshot: %v", err)
		}
		unpaired := testRecord("sess-pending-unpaired")
		unpaired.PendingBatch = []int{0, 1}
		unpaired.PendingTasks = []int{0}
		if err := s.Put(unpaired); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unpaired ledger snapshot: %v", err)
		}
	})
}

// TestFilePartialSurvivesReopen: the pending ledger is durable — a fresh
// store over the same directory folds the logged partials back in.
func TestFilePartialSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("sess-partial-reopen")
	if err := fs.Put(rec); err != nil {
		t.Fatal(err)
	}
	batch := []int{0, 2}
	if err := fs.Append(rec.ID, Op{Kind: OpPartial, Version: 2, Tasks: []int{2}, Answers: []bool{true}, Batch: batch}); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	fs2, err := NewFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, err := fs2.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.PendingBatch, batch) || !reflect.DeepEqual(got.PendingTasks, []int{2}) ||
		!reflect.DeepEqual(got.PendingAnswers, []bool{true}) || len(got.Ops) != 2 {
		t.Fatalf("reopened ledger %v/%v/%v with %d ops", got.PendingBatch, got.PendingTasks, got.PendingAnswers, len(got.Ops))
	}
	// The ledger can still be committed after reopen.
	if err := fs2.Append(rec.ID, Op{Kind: OpMerge, Version: 2, Tasks: batch, Answers: []bool{true, false}}); err != nil {
		t.Fatal(err)
	}
	got, err = fs2.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.PendingBatch != nil || len(got.Ops) != 3 {
		t.Fatalf("post-commit record: pending %v, %d ops", got.PendingBatch, len(got.Ops))
	}
}
