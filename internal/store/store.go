// Package store persists refinement sessions for the crowdfusiond service.
//
// The refinement loop is stateful by construction: every crowd answer
// conditions the joint posterior, so losing a session mid-refinement throws
// away paid crowd budget. This package makes sessions durable behind one
// small interface, SessionStore, with two implementations:
//
//   - Memory: the in-process store — fast, conformant, gone on restart;
//   - File: a pure-stdlib durable store — one snapshot file plus one
//     append-only op log per session, fsynced before a merge is
//     acknowledged, with automatic log compaction back into the snapshot.
//
// A session is persisted as its Record: the creation parameters (the prior
// in its raw wire shape, selector, pc, k, budget, seed) plus the ordered
// log of applied merge Ops. The service layer reconstructs the live session
// by replaying the ops through the same deterministic conditioning path
// that produced the original posterior, which is what makes recovery
// bit-identical: the posterior after a restart is not deserialized, it is
// recomputed by exactly the arithmetic that built it the first time.
package store

import (
	"errors"
	"fmt"
	"time"
)

// Store errors.
var (
	// ErrNotExist is returned by Get and Append for an ID with no record.
	ErrNotExist = errors.New("store: session record does not exist")
	// ErrBadID is returned for session IDs unsafe to use as file names.
	ErrBadID = errors.New("store: invalid session id")
	// ErrCorrupt is returned when a snapshot cannot be decoded or an op
	// sequence has a version gap that replay cannot bridge — the history
	// itself diverged or is unreadable. A corrupt log *tail* is not an
	// error — Load recovers to the last good record. Contrast ErrFenced
	// (lease.go): there the history is intact but the writer has lost the
	// session's lease and may no longer extend it.
	ErrCorrupt = errors.New("store: corrupt session record")
)

// Op kinds. The op log records state transitions, not reads: merges (the
// only transition that changes the posterior) and the done latch (a select
// that proved no remaining task nets positive utility).
const (
	// OpMerge is one applied answer set: the session's posterior at
	// Version was conditioned on (Tasks, Answers).
	OpMerge = "merge"
	// OpDone latches session completion at Version. It carries no tasks.
	OpDone = "done"
	// OpPartial journals single crowd judgments for the batch selected at
	// Version, before the batch is complete. Partial ops accumulate into
	// the record's pending ledger and do not advance the version; the
	// OpMerge that eventually commits the batch supersedes them. Batch
	// carries the full selected batch so recovery can re-pin the exact
	// selection the judgments answer.
	OpPartial = "partial"
	// OpObserve journals worker-attributed judgments — the observations an
	// online worker model (EM / Dawid–Skene) is estimated from. Tasks,
	// Answers and Workers are parallel (Sources optional); Version is the
	// session version the observations arrived at (observe ops do not
	// advance the version — the paired OpMerge/OpPartial does); Seq is the
	// index of the first observation appended, so a compaction that crashed
	// between snapshot and truncate heals by skipping already-folded
	// observations exactly as merge versions do.
	OpObserve = "observe"
)

// Op is one logged state transition. Merge ops are ordered by Version: the
// op with Version v is the v'th merge applied to the session, so a
// replayed record's ops always read 0, 1, 2, … — which is also what lets a
// crashed compaction be healed by skipping already-folded versions.
type Op struct {
	Kind    string `json:"op"`
	Version int    `json:"version"`
	Tasks   []int  `json:"tasks,omitempty"`
	Answers []bool `json:"answers,omitempty"`
	// Batch is the full selected batch a partial op's judgments belong to,
	// in selection order. Only OpPartial carries it.
	Batch []int `json:"batch,omitempty"`
	// Workers attributes each judgment of an OpObserve to its worker,
	// parallel to Tasks/Answers. Sources optionally names each judgment's
	// originating platform (parallel when present, or absent entirely).
	// Seq is the record's observation count before this op — the index the
	// op's first observation lands at.
	Workers []string `json:"workers,omitempty"`
	Sources []string `json:"sources,omitempty"`
	Seq     int      `json:"seq,omitempty"`
	// Epoch is the fencing epoch of the lease this op was written under,
	// 0 when the session is not leased. Append refuses ops whose epoch is
	// not the lease's current epoch with ErrFenced (see lease.go).
	Epoch uint64 `json:"epoch,omitempty"`
	// Time advances the record's LastAccess on load; it never affects
	// replay arithmetic.
	Time time.Time `json:"time,omitzero"`
}

// Observation is one worker-attributed crowd judgment folded into a
// record — the durable unit the online worker models are estimated from.
// Version is the session version current when the judgment arrived, which
// is what lets recovery reconstruct the exact estimate sequence: the
// worker estimates feeding the merge of the batch selected at version v
// were refit from observations with Version < v only.
type Observation struct {
	Task    int       `json:"task"`
	Answer  bool      `json:"answer"`
	Worker  string    `json:"worker"`
	Source  string    `json:"source,omitempty"`
	Version int       `json:"version"`
	Time    time.Time `json:"time,omitzero"`
}

// Prior is the session's initial distribution exactly as the client sent
// it: either per-fact marginals or an explicit sparse joint in the wire
// shape (n, worlds, probs). The raw form is stored — not the normalized
// posterior — so rebuilding it passes through the same constructor with the
// same inputs and yields the same bits.
type Prior struct {
	Marginals []float64 `json:"marginals,omitempty"`
	N         int       `json:"n,omitempty"`
	Worlds    []uint64  `json:"worlds,omitempty"`
	Probs     []float64 `json:"probs,omitempty"`
}

// Record is the durable form of one session: creation parameters plus the
// compacted op history. Ops holds merge ops only, in version order; the
// done latch is folded into the Done flag.
type Record struct {
	ID       string  `json:"id"`
	Selector string  `json:"selector"`
	Pc       float64 `json:"pc"`
	K        int     `json:"k"`
	Budget   int     `json:"budget"`
	Seed     int64   `json:"seed"`
	Prior    Prior   `json:"prior"`

	Created time.Time `json:"created"`
	// LastAccess is the freshness of the record on disk (advanced by op
	// times on load). It is operator-facing: the service restarts a
	// recovered session's TTL clock at load time rather than resuming
	// from this value.
	LastAccess time.Time `json:"last_access"`

	Done bool `json:"done,omitempty"`
	Ops  []Op `json:"ops,omitempty"`

	// LeaseEpoch is the fencing epoch of the lease this snapshot was
	// written under, 0 when the session is not leased. Put refuses
	// snapshots whose epoch is not the lease's current epoch with
	// ErrFenced, exactly as Append does for ops.
	LeaseEpoch uint64 `json:"lease_epoch,omitempty"`

	// Pending ledger: crowd judgments journaled for the batch selected at
	// version len(Ops) but not yet committed by a merge. PendingBatch is
	// the full selected batch in selection order; PendingTasks/
	// PendingAnswers are the judgments received so far, in arrival order.
	// The ledger is always a strict subset of the batch — the judgment
	// that completes a batch is journaled as its OpMerge, never as a
	// partial — so recovery re-enters the incremental path rather than
	// committing.
	PendingBatch   []int  `json:"pending_batch,omitempty"`
	PendingTasks   []int  `json:"pending_tasks,omitempty"`
	PendingAnswers []bool `json:"pending_answers,omitempty"`

	// WorkerModel names the session's worker-accuracy model ("fixed" when
	// empty): a creation parameter like Selector, stored so recovery refits
	// the same estimator.
	WorkerModel string `json:"worker_model,omitempty"`
	// Observations is the session's worker-attributed judgment history in
	// arrival order, folded from OpObserve ops — the input the online
	// worker models are refit from on recovery.
	Observations []Observation `json:"observations,omitempty"`
}

// SessionStore persists session records. Implementations must be safe for
// concurrent use across sessions; per-session write ordering (op versions
// arriving in sequence) is the caller's responsibility — the service layer
// already serializes each session behind its mutex.
type SessionStore interface {
	// Durable reports whether records survive a process restart. The
	// session manager uses it to pick TTL-eviction semantics: durable
	// stores flush-and-unload (the session reloads lazily on next touch),
	// volatile stores drop (the session is expired for good).
	Durable() bool
	// Put writes a full snapshot of the record, replacing any previous
	// snapshot and discarding the session's op log — Put is also the
	// compaction primitive. The record is copied; the caller keeps
	// ownership.
	Put(rec *Record) error
	// Append durably logs one op for an existing record. For durable
	// stores the op is synced to stable storage before Append returns:
	// once a merge is acknowledged it survives SIGKILL. Ops must extend
	// the record in strict version order — a stale or gapped version is
	// rejected with ErrCorrupt (retries are the caller's to deduplicate;
	// a stale append signals a divergent second writer).
	Append(id string, op Op) error
	// Get returns the record with all logged ops folded in, or
	// ErrNotExist. The result is a private copy.
	Get(id string) (*Record, error)
	// Delete removes the record and its log, reporting whether it existed.
	Delete(id string) (bool, error)
	// List returns the IDs of every stored record, sorted
	// lexicographically, in a slice the caller owns. Deterministic order
	// makes boot-time ownership scans and multi-node operator tooling
	// comparable across stores and across nodes.
	List() ([]string, error)
	// Close releases store resources. The store is unusable afterwards.
	Close() error

	// AcquireLease takes (or refreshes) the session's write lease for
	// owner, valid for ttl from now. It grants when the session is
	// unleased, the lease is expired or released, or owner already holds
	// it (same holder, same epoch); a change of holder mints a strictly
	// higher epoch. A different holder's unexpired lease blocks with
	// ErrLeaseHeld (a *LeaseHeldError carrying the blocker). Leases may be
	// acquired before the record exists — Create acquires first so the
	// initial Put is already fenced.
	AcquireLease(id, owner string, ttl time.Duration, now time.Time) (Lease, error)
	// StealLease takes the lease unconditionally at a strictly higher
	// epoch, deposing an unexpired holder. Callers should have independent
	// evidence the holder is gone (the cluster ring's liveness view); the
	// epoch keeps even an unjustified steal safe — the deposed holder's
	// writes fence rather than fork.
	StealLease(id, owner string, ttl time.Duration, now time.Time) (Lease, error)
	// RenewLease extends the holder's lease by ttl from now. The renewal
	// is fenced like a write: a stale epoch or a changed holder returns
	// ErrFenced, which is how a deposed owner discovers it lost the
	// session.
	RenewLease(id, owner string, epoch uint64, ttl time.Duration, now time.Time) (Lease, error)
	// ReleaseLease clears the holder, keeping the epoch as a permanent
	// fence: writes from the released incarnation still bounce, and the
	// next acquisition mints a higher epoch. Releasing a never-leased
	// session is a no-op; releasing after being superseded returns
	// ErrFenced (callers typically just log it).
	ReleaseLease(id, owner string, epoch uint64) error
	// GetLease returns the session's current lease, or nil when the
	// session has never been leased.
	GetLease(id string) (*Lease, error)
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	c := *r
	c.Prior.Marginals = append([]float64(nil), r.Prior.Marginals...)
	c.Prior.Worlds = append([]uint64(nil), r.Prior.Worlds...)
	c.Prior.Probs = append([]float64(nil), r.Prior.Probs...)
	c.Ops = make([]Op, len(r.Ops))
	for i, op := range r.Ops {
		c.Ops[i] = op.clone()
	}
	c.PendingBatch = append([]int(nil), r.PendingBatch...)
	c.PendingTasks = append([]int(nil), r.PendingTasks...)
	c.PendingAnswers = append([]bool(nil), r.PendingAnswers...)
	c.Observations = append([]Observation(nil), r.Observations...)
	return &c
}

// clone deep-copies one op.
func (o Op) clone() Op {
	c := o
	c.Tasks = append([]int(nil), o.Tasks...)
	c.Answers = append([]bool(nil), o.Answers...)
	c.Batch = append([]int(nil), o.Batch...)
	c.Workers = append([]string(nil), o.Workers...)
	c.Sources = append([]string(nil), o.Sources...)
	return c
}

// validate checks the structural invariants a snapshot must satisfy before
// ops can be folded onto it: merge-only ops numbered 0..len-1.
func (r *Record) validate() error {
	if r.ID == "" {
		return fmt.Errorf("%w: empty id", ErrCorrupt)
	}
	for i, op := range r.Ops {
		if op.Kind != OpMerge {
			return fmt.Errorf("%w: snapshot op %d has kind %q", ErrCorrupt, i, op.Kind)
		}
		if op.Version != i {
			return fmt.Errorf("%w: snapshot op %d has version %d", ErrCorrupt, i, op.Version)
		}
		if len(op.Tasks) == 0 || len(op.Tasks) != len(op.Answers) {
			return fmt.Errorf("%w: snapshot op %d has %d tasks, %d answers",
				ErrCorrupt, i, len(op.Tasks), len(op.Answers))
		}
	}
	if err := r.validatePending(); err != nil {
		return err
	}
	if err := r.validateObservations(); err != nil {
		return err
	}
	return nil
}

// validateObservations checks the observation-history invariants: every
// observation attributed to a named worker, versions within the folded op
// range and non-decreasing (arrival order).
func (r *Record) validateObservations() error {
	prev := 0
	for i, obs := range r.Observations {
		if obs.Worker == "" {
			return fmt.Errorf("%w: observation %d has no worker", ErrCorrupt, i)
		}
		if obs.Task < 0 {
			return fmt.Errorf("%w: observation %d has task %d", ErrCorrupt, i, obs.Task)
		}
		if obs.Version < prev || obs.Version > len(r.Ops) {
			return fmt.Errorf("%w: observation %d has version %d (ops %d, prev %d)",
				ErrCorrupt, i, obs.Version, len(r.Ops), prev)
		}
		prev = obs.Version
	}
	return nil
}

// validatePending checks the pending-ledger invariants: paired judgment
// slices, every answered task a member of the batch, no duplicate
// judgments, and a ledger strictly smaller than its batch.
func (r *Record) validatePending() error {
	if len(r.PendingTasks) != len(r.PendingAnswers) {
		return fmt.Errorf("%w: pending ledger has %d tasks, %d answers",
			ErrCorrupt, len(r.PendingTasks), len(r.PendingAnswers))
	}
	if len(r.PendingBatch) == 0 {
		if len(r.PendingTasks) != 0 {
			return fmt.Errorf("%w: pending judgments without a pending batch", ErrCorrupt)
		}
		return nil
	}
	if len(r.PendingTasks) >= len(r.PendingBatch) {
		return fmt.Errorf("%w: pending ledger (%d) not a strict subset of its batch (%d)",
			ErrCorrupt, len(r.PendingTasks), len(r.PendingBatch))
	}
	inBatch := make(map[int]bool, len(r.PendingBatch))
	for _, t := range r.PendingBatch {
		inBatch[t] = true
	}
	seen := make(map[int]bool, len(r.PendingTasks))
	for _, t := range r.PendingTasks {
		if !inBatch[t] {
			return fmt.Errorf("%w: pending judgment for task %d outside batch", ErrCorrupt, t)
		}
		if seen[t] {
			return fmt.Errorf("%w: duplicate pending judgment for task %d", ErrCorrupt, t)
		}
		seen[t] = true
	}
	return nil
}

// fold applies one logged op to the record. It returns ok=false when the
// op cannot extend the record — a version gap, an unknown kind, or a
// malformed merge — which readers treat as the start of a corrupt tail.
// Ops whose version is already folded (a compaction that crashed between
// writing the snapshot and truncating the log) are skipped silently.
func (r *Record) fold(op Op) (ok bool) {
	switch op.Kind {
	case OpMerge:
		switch {
		case op.Version < len(r.Ops):
			// Already folded into the snapshot by a compaction.
		case op.Version == len(r.Ops):
			if len(op.Tasks) == 0 || len(op.Tasks) != len(op.Answers) {
				return false
			}
			r.Ops = append(r.Ops, op.clone())
			// A merge produces a fresh posterior whose uncertainty is
			// unknown until the next select. It also commits (and thereby
			// clears) any pending ledger for this version.
			r.Done = false
			r.PendingBatch, r.PendingTasks, r.PendingAnswers = nil, nil, nil
		default:
			return false
		}
	case OpDone:
		switch {
		case op.Version < len(r.Ops):
			// Stale latch: a later merge already superseded it.
		case op.Version == len(r.Ops):
			r.Done = true
		default:
			return false
		}
	case OpPartial:
		switch {
		case op.Version < len(r.Ops):
			// The batch these judgments belong to was already committed by
			// its merge (compaction crashed between snapshot and truncate).
		case op.Version == len(r.Ops):
			if len(op.Tasks) == 0 || len(op.Tasks) != len(op.Answers) || len(op.Batch) == 0 {
				return false
			}
			batch := r.PendingBatch
			if len(batch) == 0 {
				batch = op.Batch
			}
			inBatch := make(map[int]bool, len(batch))
			for _, t := range batch {
				inBatch[t] = true
			}
			// Duplicates are rejected, not skipped: the session layer
			// deduplicates retries before persisting, so a judgment already
			// in the ledger means a divergent writer (or a log replayed onto
			// a snapshot that folded it during a crashed compaction — where
			// truncating it loses nothing).
			answered := make(map[int]bool, len(r.PendingTasks))
			for _, t := range r.PendingTasks {
				answered[t] = true
			}
			for _, t := range op.Tasks {
				if !inBatch[t] || answered[t] {
					return false
				}
				answered[t] = true
			}
			// The completing judgment is journaled as the batch's OpMerge,
			// never as a partial: a ledger covering its whole batch marks a
			// corrupt tail, not a committable state.
			if len(r.PendingTasks)+len(op.Tasks) >= len(batch) {
				return false
			}
			if len(r.PendingBatch) == 0 {
				r.PendingBatch = append([]int(nil), op.Batch...)
			}
			r.PendingTasks = append(r.PendingTasks, op.Tasks...)
			r.PendingAnswers = append(r.PendingAnswers, op.Answers...)
		default:
			return false
		}
	case OpObserve:
		switch {
		case len(op.Tasks) == 0:
			// An empty observe op is meaningless — and without this guard it
			// would satisfy the already-folded skip below vacuously.
			return false
		case op.Seq+len(op.Tasks) <= len(r.Observations):
			// Already folded into the snapshot by a compaction.
		case op.Seq == len(r.Observations) && op.Version == len(r.Ops):
			if len(op.Tasks) == 0 || len(op.Tasks) != len(op.Answers) ||
				len(op.Tasks) != len(op.Workers) {
				return false
			}
			if len(op.Sources) != 0 && len(op.Sources) != len(op.Tasks) {
				return false
			}
			for _, w := range op.Workers {
				if w == "" {
					return false
				}
			}
			for i, t := range op.Tasks {
				obs := Observation{
					Task:    t,
					Answer:  op.Answers[i],
					Worker:  op.Workers[i],
					Version: op.Version,
					Time:    op.Time,
				}
				if len(op.Sources) != 0 {
					obs.Source = op.Sources[i]
				}
				r.Observations = append(r.Observations, obs)
			}
		default:
			return false
		}
	default:
		return false
	}
	if op.Time.After(r.LastAccess) {
		r.LastAccess = op.Time
	}
	return true
}

// checkID vets an ID for use as (part of) a file name: non-empty, bounded,
// and drawn from a character set with no path separators or dots, so a
// hostile ID cannot traverse out of the data directory.
func checkID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("%w: %q", ErrBadID, id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c == '-' || c == '_':
		default:
			return fmt.Errorf("%w: %q", ErrBadID, id)
		}
	}
	return nil
}
