package store

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// eachStore runs one conformance test against every SessionStore
// implementation — the suite the ISSUE's acceptance criteria require both
// stores to pass.
func eachStore(t *testing.T, run func(t *testing.T, s SessionStore)) {
	t.Helper()
	impls := []struct {
		name string
		make func(t *testing.T) SessionStore
	}{
		{"memory", func(t *testing.T) SessionStore { return NewMemory() }},
		{"file", func(t *testing.T) SessionStore {
			fs, err := NewFile(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			s := impl.make(t)
			defer s.Close()
			run(t, s)
		})
	}
}

// testRecord builds a representative record: an explicit joint prior, two
// compacted ops, a done latch not yet set.
func testRecord(id string) *Record {
	return &Record{
		ID:       id,
		Selector: "Approx+Prune+Pre",
		Pc:       0.8,
		K:        2,
		Budget:   6,
		Seed:     7,
		Prior: Prior{
			N:      3,
			Worlds: []uint64{0b001, 0b010, 0b110},
			Probs:  []float64{0.2, 0.5, 0.3},
		},
		Created:    time.Unix(1000, 0).UTC(),
		LastAccess: time.Unix(1000, 0).UTC(),
		Ops: []Op{
			{Kind: OpMerge, Version: 0, Tasks: []int{0, 1}, Answers: []bool{true, false}},
			{Kind: OpMerge, Version: 1, Tasks: []int{2}, Answers: []bool{true}},
		},
	}
}

func TestConformancePutGetRoundTrip(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-roundtrip")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round trip mutated record:\n got %+v\nwant %+v", got, rec)
		}
		// The returned record is a private copy: mutating it must not
		// write through to the store.
		got.Ops[0].Answers[0] = false
		again, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Ops[0].Answers[0] {
			t.Fatal("Get returned a shared record")
		}
	})
}

func TestConformanceMarginalsPriorRoundTrip(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := &Record{
			ID:       "sess-marginals",
			Selector: "Random",
			Pc:       0.75,
			K:        1,
			Budget:   4,
			Prior:    Prior{Marginals: []float64{0.5, 0.63, 0.58}},
			Created:  time.Unix(2000, 0).UTC(),
		}
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Prior.Marginals, rec.Prior.Marginals) || got.Prior.N != 0 {
			t.Fatalf("marginals prior mutated: %+v", got.Prior)
		}
	})
}

func TestConformanceAppendFoldsIntoGet(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-append")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		op := Op{Kind: OpMerge, Version: 2, Tasks: []int{1}, Answers: []bool{false},
			Time: time.Unix(3000, 0).UTC()}
		if err := s.Append(rec.ID, op); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(rec.ID, Op{Kind: OpDone, Version: 3}); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Ops) != 3 || !reflect.DeepEqual(got.Ops[2], op) {
			t.Fatalf("appended op not folded: %+v", got.Ops)
		}
		if !got.Done {
			t.Fatal("done latch not folded")
		}
		if !got.LastAccess.Equal(time.Unix(3000, 0).UTC()) {
			t.Fatalf("op time did not advance last access: %v", got.LastAccess)
		}
		// A merge after the latch clears it again.
		if err := s.Append(rec.ID, Op{Kind: OpMerge, Version: 3, Tasks: []int{0}, Answers: []bool{true}}); err != nil {
			t.Fatal(err)
		}
		got, err = s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Done || len(got.Ops) != 4 {
			t.Fatalf("merge after done latch: done=%v ops=%d", got.Done, len(got.Ops))
		}
	})
}

func TestConformanceAppendEnforcesVersionOrder(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-dedup")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		// An op already in the snapshot is rejected: the service
		// deduplicates retries in memory, so a stale append signals a
		// divergent second writer and must not be silently dropped.
		err := s.Append(rec.ID, rec.Ops[0])
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("stale append = %v, want ErrCorrupt", err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Ops) != 2 {
			t.Fatalf("stale append changed the record: %d ops", len(got.Ops))
		}
		// A version gap is rejected: it could never replay.
		err = s.Append(rec.ID, Op{Kind: OpMerge, Version: 5, Tasks: []int{0}, Answers: []bool{true}})
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("gap append = %v, want ErrCorrupt", err)
		}
		// The in-order op still lands.
		if err := s.Append(rec.ID, Op{Kind: OpMerge, Version: 2, Tasks: []int{0}, Answers: []bool{true}}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformancePutReplacesAndCompacts(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		rec := testRecord("sess-replace")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(rec.ID, Op{Kind: OpMerge, Version: 2, Tasks: []int{1}, Answers: []bool{true}}); err != nil {
			t.Fatal(err)
		}
		// Put with the folded state is compaction: the log is absorbed.
		folded, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		folded.LastAccess = time.Unix(4000, 0).UTC()
		if err := s.Put(folded); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, folded) {
			t.Fatalf("compacting Put changed state:\n got %+v\nwant %+v", got, folded)
		}
		// Appends keep extending from the compacted version.
		if err := s.Append(rec.ID, Op{Kind: OpMerge, Version: 3, Tasks: []int{0}, Answers: []bool{false}}); err != nil {
			t.Fatal(err)
		}
		got, err = s.Get(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Ops) != 4 {
			t.Fatalf("append after compaction: %d ops", len(got.Ops))
		}
	})
}

func TestConformanceDeleteAndList(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		ids := []string{"sess-a", "sess-b", "sess-c"}
		for _, id := range ids {
			if err := s.Put(testRecord(id)); err != nil {
				t.Fatal(err)
			}
		}
		listed, err := s.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(listed) != len(ids) {
			t.Fatalf("List = %v, want %v", listed, ids)
		}
		ok, err := s.Delete("sess-b")
		if err != nil || !ok {
			t.Fatalf("Delete = %v, %v", ok, err)
		}
		ok, err = s.Delete("sess-b")
		if err != nil || ok {
			t.Fatalf("double Delete = %v, %v", ok, err)
		}
		if _, err := s.Get("sess-b"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("Get after delete = %v, want ErrNotExist", err)
		}
		listed, err = s.List()
		if err != nil || len(listed) != 2 {
			t.Fatalf("List after delete = %v, %v", listed, err)
		}
	})
}

func TestConformanceMissingAndInvalidIDs(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		if _, err := s.Get("sess-none"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("Get missing = %v, want ErrNotExist", err)
		}
		err := s.Append("sess-none", Op{Kind: OpMerge, Version: 0, Tasks: []int{0}, Answers: []bool{true}})
		if !errors.Is(err, ErrNotExist) {
			t.Fatalf("Append missing = %v, want ErrNotExist", err)
		}
		for _, bad := range []string{"", "../escape", "a/b", "dot.dot", "white space"} {
			if _, err := s.Get(bad); !errors.Is(err, ErrBadID) {
				t.Fatalf("Get(%q) = %v, want ErrBadID", bad, err)
			}
			if err := s.Put(&Record{ID: bad}); !errors.Is(err, ErrBadID) {
				t.Fatalf("Put(%q) = %v, want ErrBadID", bad, err)
			}
		}
	})
}

// TestConformanceListOrderingAndIsolation pins the List contract both
// implementations must share: IDs come back sorted lexicographically (so
// boot scans and operator tooling compare across stores and nodes), each
// exactly once, and the returned slice is the caller's — mutating it must
// not corrupt later listings.
func TestConformanceListOrderingAndIsolation(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		// Insert deliberately out of order.
		for _, id := range []string{"sess-m", "sess-a", "sess-z", "sess-k"} {
			if err := s.Put(testRecord(id)); err != nil {
				t.Fatal(err)
			}
		}
		want := []string{"sess-a", "sess-k", "sess-m", "sess-z"}
		got, err := s.List()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("List = %v, want sorted %v", got, want)
		}
		// The slice is a private copy: scribbling on it leaves the store's
		// next answer untouched.
		got[0] = "sess-corrupted"
		again, err := s.List()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, want) {
			t.Fatalf("List after caller mutation = %v, want %v", again, want)
		}
		// Ordering holds across inserts and deletes, not just one snapshot.
		if err := s.Put(testRecord("sess-c")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Delete("sess-m"); err != nil {
			t.Fatal(err)
		}
		got, err = s.List()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, []string{"sess-a", "sess-c", "sess-k", "sess-z"}) {
			t.Fatalf("List after churn = %v", got)
		}
	})
}

// TestConformanceConcurrentGetAfterDelete races readers against a deleter:
// every Get must return either the complete record or ErrNotExist — never
// an error of another class, never a partial record. Run with -race; this
// is the read-side half of the contract the service relies on when a
// Delete lands while another node's lazy load is mid-read.
func TestConformanceConcurrentGetAfterDelete(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		const readers = 4
		rec := testRecord("sess-racy")
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		errs := make(chan error, readers+1)
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					got, err := s.Get(rec.ID)
					if errors.Is(err, ErrNotExist) {
						return // the delete won the race; done
					}
					if err != nil {
						errs <- fmt.Errorf("reader: %w", err)
						return
					}
					if len(got.Ops) != len(rec.Ops) || got.Prior.N != rec.Prior.N {
						errs <- fmt.Errorf("reader saw a partial record: %+v", got)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := s.Delete(rec.ID); err != nil {
				errs <- fmt.Errorf("deleter: %w", err)
			}
		}()
		close(start)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if _, err := s.Get(rec.ID); !errors.Is(err, ErrNotExist) {
			t.Fatalf("Get after settled delete = %v, want ErrNotExist", err)
		}
	})
}

// TestConformanceConcurrentSessions hammers the store from many goroutines,
// one session each (per-session ordering is the caller's contract), and
// verifies every record converges to its full op history. Run with -race.
func TestConformanceConcurrentSessions(t *testing.T) {
	eachStore(t, func(t *testing.T, s SessionStore) {
		const sessions, opsEach = 8, 20
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for g := 0; g < sessions; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				id := fmt.Sprintf("sess-conc-%d", g)
				rec := testRecord(id)
				rec.Ops = nil
				if err := s.Put(rec); err != nil {
					errs <- err
					return
				}
				for v := 0; v < opsEach; v++ {
					op := Op{Kind: OpMerge, Version: v, Tasks: []int{v % 3}, Answers: []bool{v%2 == 0}}
					if err := s.Append(id, op); err != nil {
						errs <- err
						return
					}
					if v%5 == 4 { // interleave reads with the writes
						if _, err := s.Get(id); err != nil {
							errs <- err
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for g := 0; g < sessions; g++ {
			got, err := s.Get(fmt.Sprintf("sess-conc-%d", g))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Ops) != opsEach {
				t.Fatalf("session %d has %d ops, want %d", g, len(got.Ops), opsEach)
			}
			for v, op := range got.Ops {
				if op.Version != v {
					t.Fatalf("session %d op %d has version %d", g, v, op.Version)
				}
			}
		}
	})
}
