package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Recorder retains finished spans grouped by trace id: a FIFO ring of the
// most recent traces plus a slowest-N bucket that survives ring eviction,
// so a pathological request from an hour ago is still inspectable. All
// bounds are fixed at construction; memory use is O(limit · spanCap).
type Recorder struct {
	mu      sync.Mutex
	limit   int // max traces in the recent ring
	spanCap int // max spans retained per trace (excess counted, not kept)
	slowN   int // size of the slowest bucket
	node    string

	traces  map[string]*traceEntry
	order   []string      // trace ids, oldest first
	slowest []*traceEntry // kept sorted slowest-first, len <= slowN
}

type traceEntry struct {
	id      string
	spans   []SpanData
	dropped int
}

// SpanData is the retained, JSON-ready form of a finished span. Duration
// is nanoseconds (Go's time.Duration JSON encoding).
type SpanData struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Node     string        `json:"node,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// TraceData is one trace as served by /debug/traces: its spans in end
// order, with the trace's wall-clock extent computed from them.
type TraceData struct {
	TraceID      string        `json:"trace_id"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration_ns"`
	Spans        []SpanData    `json:"spans"`
	DroppedSpans int           `json:"dropped_spans,omitempty"`
}

// Snapshot is the full /debug/traces payload.
type Snapshot struct {
	Node    string      `json:"node,omitempty"`
	Recent  []TraceData `json:"recent"`
	Slowest []TraceData `json:"slowest"`
}

const (
	defaultTraceLimit = 256
	defaultSpanCap    = 512
	defaultSlowN      = 32
)

// NewRecorder returns a Recorder with default bounds (256 recent traces,
// 512 spans per trace, 32 slowest traces), tagged with node.
func NewRecorder(node string) *Recorder {
	return &Recorder{
		limit:   defaultTraceLimit,
		spanCap: defaultSpanCap,
		slowN:   defaultSlowN,
		node:    node,
		traces:  make(map[string]*traceEntry),
	}
}

// SetLimits overrides the retention bounds; zero values keep the current
// setting. For tests and memory-constrained deployments.
func (r *Recorder) SetLimits(recent, spansPerTrace, slowest int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if recent > 0 {
		r.limit = recent
	}
	if spansPerTrace > 0 {
		r.spanCap = spansPerTrace
	}
	if slowest >= 0 {
		r.slowN = slowest
	}
}

func (r *Recorder) record(sd SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	te := r.traces[sd.TraceID]
	if te == nil {
		if len(r.order) >= r.limit {
			r.evictOldestLocked()
		}
		te = &traceEntry{id: sd.TraceID}
		r.traces[sd.TraceID] = te
		r.order = append(r.order, sd.TraceID)
	}
	if len(te.spans) >= r.spanCap {
		te.dropped++
		return
	}
	te.spans = append(te.spans, sd)
}

// evictOldestLocked drops the oldest trace from the ring, first offering
// it to the slowest bucket.
func (r *Recorder) evictOldestLocked() {
	id := r.order[0]
	r.order = r.order[1:]
	te := r.traces[id]
	delete(r.traces, id)
	if te == nil || r.slowN == 0 {
		return
	}
	d := te.extent()
	if len(r.slowest) < r.slowN {
		r.slowest = append(r.slowest, te)
	} else if d > r.slowest[len(r.slowest)-1].extent() {
		r.slowest[len(r.slowest)-1] = te
	} else {
		return
	}
	sort.SliceStable(r.slowest, func(i, j int) bool {
		return r.slowest[i].extent() > r.slowest[j].extent()
	})
}

// extent is the wall-clock spread of the trace's spans: earliest start to
// latest end.
func (te *traceEntry) extent() time.Duration {
	if len(te.spans) == 0 {
		return 0
	}
	var first, last time.Time
	for i := range te.spans {
		s := &te.spans[i]
		end := s.Start.Add(s.Duration)
		if first.IsZero() || s.Start.Before(first) {
			first = s.Start
		}
		if end.After(last) {
			last = end
		}
	}
	return last.Sub(first)
}

func (te *traceEntry) data() TraceData {
	td := TraceData{
		TraceID:      te.id,
		Duration:     te.extent(),
		Spans:        append([]SpanData(nil), te.spans...),
		DroppedSpans: te.dropped,
	}
	for i := range te.spans {
		if td.Start.IsZero() || te.spans[i].Start.Before(td.Start) {
			td.Start = te.spans[i].Start
		}
	}
	return td
}

// Snapshot returns a copy of everything retained, newest recent trace
// first.
func (r *Recorder) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Node:    r.node,
		Recent:  make([]TraceData, 0, len(r.order)),
		Slowest: make([]TraceData, 0, len(r.slowest)),
	}
	for i := len(r.order) - 1; i >= 0; i-- {
		snap.Recent = append(snap.Recent, r.traces[r.order[i]].data())
	}
	for _, te := range r.slowest {
		snap.Slowest = append(snap.Slowest, te.data())
	}
	return snap
}

// Trace returns the retained spans for one trace id, consulting both the
// recent ring and the slowest bucket.
func (r *Recorder) Trace(id string) (TraceData, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if te := r.traces[id]; te != nil {
		return te.data(), true
	}
	for _, te := range r.slowest {
		if te.id == id {
			return te.data(), true
		}
	}
	return TraceData{}, false
}

// Handler serves the recorder as JSON: GET /debug/traces for the full
// snapshot, GET /debug/traces?trace=<id> for one trace (404 if unknown).
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if id := req.URL.Query().Get("trace"); id != "" {
			td, ok := r.Trace(id)
			if !ok {
				http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
				return
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(td)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}
