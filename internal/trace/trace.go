// Package trace is a pure-stdlib distributed-tracing layer for the
// crowdfusion fleet: W3C trace-context (traceparent) propagation, in-process
// spans, and a bounded in-memory recorder exposed over /debug/traces.
//
// The design optimizes for two things:
//
//   - Zero overhead when tracing is off. Every method is nil-receiver safe:
//     a nil *Tracer returns nil *Spans, and all *Span methods no-op on nil,
//     so untraced paths (benchmarks, direct library use) pay only a nil
//     check.
//   - No dependencies. IDs are random 128/64-bit values formatted per the
//     W3C trace-context spec; the recorder is a mutex-guarded ring.
package trace

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"time"
)

// TraceID is a 128-bit W3C trace id. The all-zero value is invalid.
type TraceID [16]byte

// SpanID is a 64-bit W3C span (parent) id. The all-zero value is invalid.
type SpanID [8]byte

// IsValid reports whether the trace id is non-zero.
func (t TraceID) IsValid() bool { return t != TraceID{} }

// IsValid reports whether the span id is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// String returns the 32-char lowercase hex form, or "" for the zero id.
func (t TraceID) String() string {
	if !t.IsValid() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// String returns the 16-char lowercase hex form, or "" for the zero id.
func (s SpanID) String() string {
	if !s.IsValid() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// FlagSampled is the W3C trace-flags bit indicating the caller recorded
// this trace. We set it on everything we mint: recording is always on.
const FlagSampled byte = 0x01

// SpanContext identifies one span within one trace, as carried on the wire
// in a traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// IsValid reports whether both ids are non-zero, per the W3C spec.
func (sc SpanContext) IsValid() bool {
	return sc.TraceID.IsValid() && sc.SpanID.IsValid()
}

// Traceparent formats the context as a W3C traceparent header value:
// version "00", 32 hex trace id, 16 hex span id, 2 hex flags.
// Returns "" for an invalid context.
func (sc SpanContext) Traceparent() string {
	if !sc.IsValid() {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID.String(), sc.SpanID.String(), sc.Flags)
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version except the reserved "ff" (per spec, higher versions are parsed
// as version 00), requires lowercase hex, and rejects all-zero trace or
// span ids.
func ParseTraceparent(s string) (SpanContext, bool) {
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (span id) + 1 + 2 (flags).
	if len(s) < 55 {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if len(s) > 55 {
		// Future versions may append fields; version 00 must be exactly 55.
		if s[0] == '0' && s[1] == '0' {
			return SpanContext{}, false
		}
		if s[55] != '-' {
			return SpanContext{}, false
		}
	}
	if !isHexLower(s[:2]) || s[:2] == "ff" {
		return SpanContext{}, false
	}
	var sc SpanContext
	if !isHexLower(s[3:35]) || !isHexLower(s[36:52]) || !isHexLower(s[53:55]) {
		return SpanContext{}, false
	}
	hex.Decode(sc.TraceID[:], []byte(s[3:35]))
	hex.Decode(sc.SpanID[:], []byte(s[36:52]))
	var fb [1]byte
	hex.Decode(fb[:], []byte(s[53:55]))
	sc.Flags = fb[0]
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Tracer mints spans and feeds a Recorder. A nil Tracer is valid and
// produces nil spans; a Tracer with a nil Recorder mints and propagates
// ids (so traceparent still flows downstream) without retaining spans.
type Tracer struct {
	rec  *Recorder
	node string
	now  func() time.Time
}

// New returns a Tracer tagging spans with the given node name. rec may be
// nil to propagate ids without recording.
func New(node string, rec *Recorder) *Tracer {
	return &Tracer{rec: rec, node: node, now: time.Now}
}

// SetNow overrides the tracer's clock (tests).
func (t *Tracer) SetNow(now func() time.Time) {
	if t != nil && now != nil {
		t.now = now
	}
}

// Recorder returns the recorder backing this tracer, or nil.
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

func newTraceID() TraceID {
	var id TraceID
	for !id.IsValid() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * (7 - i)))
			id[8+i] = byte(b >> (8 * (7 - i)))
		}
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for !id.IsValid() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (8 * (7 - i)))
		}
	}
	return id
}

// Start opens a span named name. If ctx carries a span, the new span is
// its child in the same trace; otherwise a new root trace is started. The
// returned context carries the new span. On a nil Tracer it returns ctx
// unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent SpanContext
	if ps := SpanFromContext(ctx); ps != nil {
		parent = ps.sc
	}
	return t.start(ctx, parent, name)
}

// StartRemote opens a span continuing a trace received from another
// process (a parsed traceparent). If remote is invalid it behaves like
// Start, beginning a new root trace.
func (t *Tracer) StartRemote(ctx context.Context, remote SpanContext, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.start(ctx, remote, name)
}

func (t *Tracer) start(ctx context.Context, parent SpanContext, name string) (context.Context, *Span) {
	sp := &Span{
		tracer: t,
		name:   name,
		start:  t.now(),
	}
	if parent.IsValid() {
		sp.sc = SpanContext{TraceID: parent.TraceID, SpanID: newSpanID(), Flags: parent.Flags | FlagSampled}
		sp.parent = parent.SpanID
	} else {
		sp.sc = SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Flags: FlagSampled}
	}
	return ContextWithSpan(ctx, sp), sp
}

// Span is one timed operation within a trace. All methods are nil-safe.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
	errmsg string
	ended  bool
}

// Attr is a key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Context returns the span's wire context, or the zero SpanContext on nil.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the hex trace id, or "" on nil.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// SpanID returns the hex span id, or "" on nil.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.sc.SpanID.String()
}

// SetAttr annotates the span. No-op on nil. Spans are owned by one
// goroutine until End, matching how the service threads them; SetAttr is
// not synchronized.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetError marks the span failed with err's message. No-op on nil / nil err.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.errmsg = err.Error()
}

// End closes the span and hands it to the tracer's recorder. Safe to call
// more than once; only the first call records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	if s.tracer == nil || s.tracer.rec == nil {
		return
	}
	end := s.tracer.now()
	s.tracer.rec.record(SpanData{
		TraceID:  s.sc.TraceID.String(),
		SpanID:   s.sc.SpanID.String(),
		ParentID: s.parent.String(),
		Name:     s.name,
		Node:     s.tracer.node,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Attrs:    s.attrs,
		Error:    s.errmsg,
	})
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp. A nil sp returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// TraceIDFromContext returns the hex trace id of the span carried by ctx,
// or "".
func TraceIDFromContext(ctx context.Context) string {
	return SpanFromContext(ctx).TraceID()
}
