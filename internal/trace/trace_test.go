package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New("n1", nil)
	_, sp := tr.Start(context.Background(), "root")
	hdr := sp.Context().Traceparent()
	if len(hdr) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(hdr), hdr)
	}
	sc, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", hdr)
	}
	if sc != sp.Context() {
		t.Fatalf("round trip mismatch: %+v != %+v", sc, sp.Context())
	}
	if sc.Flags&FlagSampled == 0 {
		t.Fatalf("minted span not sampled: %+v", sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header rejected: %q", valid)
	}
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // reserved version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // trailing junk on v00
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex version
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong separator
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
	// A future version may carry extra fields after the flags.
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if _, ok := ParseTraceparent(future); !ok {
		t.Errorf("future-version header rejected: %q", future)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "noop")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span stored in context")
	}
	sp.SetAttr("k", 1)
	sp.SetError(fmt.Errorf("x"))
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if got := TraceIDFromContext(ctx); got != "" {
		t.Fatalf("TraceIDFromContext on empty ctx = %q", got)
	}
	if tp := sp.Context().Traceparent(); tp != "" {
		t.Fatalf("nil span traceparent = %q", tp)
	}
}

func TestChildSpansShareTrace(t *testing.T) {
	rec := NewRecorder("n1")
	tr := New("n1", rec)
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	if child.SpanID() == root.SpanID() {
		t.Fatal("child reused root span id")
	}
	child.SetAttr("k", 7)
	child.End()
	root.End()

	td, ok := rec.Trace(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not retained", root.TraceID())
	}
	if len(td.Spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(td.Spans))
	}
	// Spans land in end order: child first.
	if td.Spans[0].Name != "child" || td.Spans[0].ParentID != root.SpanID() {
		t.Fatalf("child span wrong: %+v", td.Spans[0])
	}
	if td.Spans[1].Name != "root" || td.Spans[1].ParentID != "" {
		t.Fatalf("root span wrong: %+v", td.Spans[1])
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	rec := NewRecorder("server")
	tr := New("server", rec)
	remote, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("parse failed")
	}
	_, sp := tr.StartRemote(context.Background(), remote, "http")
	if sp.TraceID() != remote.TraceID.String() {
		t.Fatalf("remote trace not continued: %s != %s", sp.TraceID(), remote.TraceID)
	}
	sp.End()
	if _, ok := rec.Trace(remote.TraceID.String()); !ok {
		t.Fatal("continued trace not recorded")
	}

	// Invalid remote context starts a fresh root trace.
	_, sp2 := tr.StartRemote(context.Background(), SpanContext{}, "http")
	if sp2.TraceID() == "" || sp2.TraceID() == remote.TraceID.String() {
		t.Fatalf("invalid remote should mint a new trace, got %q", sp2.TraceID())
	}
}

func TestRecorderEvictionAndSlowest(t *testing.T) {
	rec := NewRecorder("n1")
	rec.SetLimits(4, 8, 2)
	tr := New("n1", rec)
	base := time.Unix(0, 0)
	// Trace i has duration i ms; the slowest must survive eviction.
	var ids []string
	for i := 1; i <= 10; i++ {
		now := base
		tr.SetNow(func() time.Time { return now })
		_, sp := tr.Start(context.Background(), fmt.Sprintf("op%d", i))
		now = base.Add(time.Duration(i) * time.Millisecond)
		sp.End()
		ids = append(ids, sp.TraceID())
	}
	snap := rec.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("recent ring holds %d, want 4", len(snap.Recent))
	}
	if snap.Recent[0].TraceID != ids[9] {
		t.Fatalf("newest-first order violated: %s", snap.Recent[0].TraceID)
	}
	if len(snap.Slowest) != 2 {
		t.Fatalf("slowest bucket holds %d, want 2", len(snap.Slowest))
	}
	// Traces 1..6 were evicted; 5 and 6 (5ms, 6ms) are the slowest of those.
	if snap.Slowest[0].TraceID != ids[5] || snap.Slowest[1].TraceID != ids[4] {
		t.Fatalf("slowest bucket kept %s,%s want %s,%s",
			snap.Slowest[0].TraceID, snap.Slowest[1].TraceID, ids[5], ids[4])
	}
	if snap.Slowest[0].Duration != 6*time.Millisecond {
		t.Fatalf("slowest duration = %v, want 6ms", snap.Slowest[0].Duration)
	}
	// Trace lookup still finds an evicted-but-slow trace.
	if _, ok := rec.Trace(ids[5]); !ok {
		t.Fatal("slow trace not findable after eviction")
	}
	if _, ok := rec.Trace(ids[0]); ok {
		t.Fatal("fast evicted trace still findable")
	}
}

func TestRecorderSpanCap(t *testing.T) {
	rec := NewRecorder("n1")
	rec.SetLimits(4, 3, 0)
	tr := New("n1", rec)
	ctx, root := tr.Start(context.Background(), "root")
	for i := 0; i < 5; i++ {
		_, sp := tr.Start(ctx, "child")
		sp.End()
	}
	root.End()
	td, ok := rec.Trace(root.TraceID())
	if !ok {
		t.Fatal("trace missing")
	}
	if len(td.Spans) != 3 || td.DroppedSpans != 3 {
		t.Fatalf("spans=%d dropped=%d, want 3/3", len(td.Spans), td.DroppedSpans)
	}
}

func TestRecorderConcurrency(t *testing.T) {
	rec := NewRecorder("n1")
	rec.SetLimits(16, 16, 4)
	tr := New("n1", rec)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, root := tr.Start(context.Background(), "root")
				_, child := tr.Start(ctx, "child")
				child.End()
				root.End()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		rec.Snapshot()
	}
	wg.Wait()
	if n := len(rec.Snapshot().Recent); n == 0 || n > 16 {
		t.Fatalf("recent ring size %d out of bounds", n)
	}
}

func TestDebugTracesHandler(t *testing.T) {
	rec := NewRecorder("n1")
	tr := New("n1", rec)
	_, sp := tr.Start(context.Background(), "op")
	sp.SetAttr("session", "abc")
	sp.End()

	srv := httptest.NewServer(Handler(rec))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Node != "n1" || len(snap.Recent) != 1 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	if snap.Recent[0].TraceID != sp.TraceID() {
		t.Fatalf("trace id %s, want %s", snap.Recent[0].TraceID, sp.TraceID())
	}

	one, err := srv.Client().Get(srv.URL + "/debug/traces?trace=" + sp.TraceID())
	if err != nil {
		t.Fatal(err)
	}
	defer one.Body.Close()
	if one.StatusCode != 200 {
		t.Fatalf("single-trace status %d", one.StatusCode)
	}
	missing, err := srv.Client().Get(srv.URL + "/debug/traces?trace=deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != 404 {
		t.Fatalf("missing-trace status %d, want 404", missing.StatusCode)
	}
	post, err := srv.Client().Post(srv.URL+"/debug/traces", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}
