// Package worlds converts a book's author-list statements plus
// machine-fusion confidences into the sparse joint distribution over
// possible outputs that CrowdFusion consumes (Section II-A of the paper).
//
// The correlation structure comes from the semantics of the data: two
// statements that render the same set of authors (in any order or format)
// are true together or false together, and statements rendering different
// author sets are mutually exclusive — exactly one author set is the real
// cover list. Each distinct canonical author set therefore defines one
// possible world: "this set is the true list", in which a statement is true
// iff its canonical set matches. An optional extra world captures "none of
// the claimed sets is right".
//
// World priors are proportional to the fused confidence mass of the
// statements supporting each candidate set, which is how any
// probability-producing fusion method (CRH, TruthFinder, AccuVote,
// majority vote) initializes CrowdFusion.
package worlds

import (
	"errors"
	"fmt"
	"sort"

	"crowdfusion/internal/bookdata"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/dist"
	"crowdfusion/internal/fusion"
)

// Options tunes joint construction.
type Options struct {
	// NoneWorldPrior is the prior probability that no claimed author set
	// is correct (the all-false world). Zero disables the extra world.
	// Default 0.02.
	NoneWorldPrior float64
	// MinGroupMass floors every candidate set's confidence mass so that
	// a candidate no fusion method liked still has non-zero prior (the
	// crowd may yet vindicate it). Default 1e-3.
	MinGroupMass float64
}

// DefaultOptions returns the defaults described above.
func DefaultOptions() Options {
	return Options{NoneWorldPrior: 0.02, MinGroupMass: 1e-3}
}

func (o Options) normalized() (Options, error) {
	if o.NoneWorldPrior < 0 || o.NoneWorldPrior >= 1 {
		return o, errors.New("worlds: NoneWorldPrior must be in [0, 1)")
	}
	if o.MinGroupMass < 0 {
		return o, errors.New("worlds: MinGroupMass must be non-negative")
	}
	if o.MinGroupMass == 0 {
		o.MinGroupMass = 1e-3
	}
	return o, nil
}

// Instance is one book's CrowdFusion problem: the facts (statements), the
// prior joint distribution, the hidden truth world, and the gold labels.
type Instance struct {
	ISBN       string
	Title      string
	Statements []bookdata.Statement
	Facts      []dist.Fact
	Joint      *dist.Joint
	Truth      dist.World // gold judgments as a world
	Gold       []bool     // gold judgment per fact
}

// N returns the number of facts (statements).
func (in *Instance) N() int { return len(in.Statements) }

// Build constructs the Instance for one book from its statements and the
// per-statement confidences produced by a fusion method (keyed by statement
// text; missing entries default to 0).
func Build(book bookdata.Book, statements []bookdata.Statement,
	confidence map[string]float64, opts Options) (*Instance, error) {

	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	n := len(statements)
	if n == 0 {
		return nil, fmt.Errorf("worlds: book %s has no statements", book.ISBN)
	}
	if n > dist.MaxFacts {
		return nil, fmt.Errorf("worlds: book %s has %d statements (limit %d)",
			book.ISBN, n, dist.MaxFacts)
	}

	// Group statements by canonical author set.
	type group struct {
		key     string
		mask    dist.World
		mass    float64
		members int
	}
	byKey := make(map[string]*group)
	var order []string
	for i, s := range statements {
		key := s.CanonicalKey()
		g, ok := byKey[key]
		if !ok {
			g = &group{key: key}
			byKey[key] = g
			order = append(order, key)
		}
		g.mask = g.mask.Set(i, true)
		g.mass += confidence[s.Text]
		g.members++
	}
	sort.Strings(order)

	worldList := make([]dist.World, 0, len(order)+1)
	probs := make([]float64, 0, len(order)+1)
	var total float64
	for _, key := range order {
		g := byKey[key]
		m := g.mass
		if m < opts.MinGroupMass {
			m = opts.MinGroupMass
		}
		worldList = append(worldList, g.mask)
		probs = append(probs, m)
		total += m
	}
	// Scale candidate worlds to 1 - NoneWorldPrior and append the
	// all-false world.
	if opts.NoneWorldPrior > 0 {
		scale := (1 - opts.NoneWorldPrior) / total
		for i := range probs {
			probs[i] *= scale
		}
		worldList = append(worldList, 0)
		probs = append(probs, opts.NoneWorldPrior)
	}
	joint, err := dist.New(n, worldList, probs)
	if err != nil {
		return nil, fmt.Errorf("worlds: book %s: %w", book.ISBN, err)
	}

	marginals := joint.Marginals()
	facts := make([]dist.Fact, n)
	gold := make([]bool, n)
	var truth dist.World
	for i, s := range statements {
		facts[i] = dist.Fact{
			ID:        s.ID,
			Subject:   book.Title,
			Predicate: "complete full name author list",
			Object:    s.Text,
			Prior:     marginals[i],
		}
		gold[i] = s.Gold
		if s.Gold {
			truth = truth.Set(i, true)
		}
	}
	return &Instance{
		ISBN:       book.ISBN,
		Title:      book.Title,
		Statements: append([]bookdata.Statement(nil), statements...),
		Facts:      facts,
		Joint:      joint,
		Truth:      truth,
		Gold:       gold,
	}, nil
}

// BuildAll constructs instances for every book in the dataset using the
// fused truths of one machine-only method. Books whose statements exceed
// the fact limit are skipped with an error entry.
func BuildAll(d *bookdata.Dataset, truths []fusion.Truth, opts Options) ([]*Instance, error) {
	byObject := fusion.ByObject(truths)
	out := make([]*Instance, 0, len(d.Books))
	for _, b := range d.Books {
		conf := make(map[string]float64)
		for _, t := range byObject[b.ISBN] {
			conf[t.Value] = t.Confidence
		}
		in, err := Build(b, d.Statements[b.ISBN], conf, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// Simulator builds a crowd simulator for the instance: the hidden truth is
// the instance's gold world, and each statement's task accuracy is the
// base accuracy adjusted by its Section V-D difficulty class under the
// given profile.
func (in *Instance) Simulator(basePc float64, profile crowd.DifficultyProfile, seed int64) (*crowd.Simulator, error) {
	sim, err := crowd.NewSimulator(in.Truth, basePc, seed)
	if err != nil {
		return nil, err
	}
	for i, s := range in.Statements {
		eff := profile.EffectiveAccuracy(s.Class, basePc)
		if eff != basePc {
			if err := sim.SetTaskAccuracy(i, eff); err != nil {
				return nil, err
			}
		}
	}
	return sim, nil
}

// UniformSimulator builds a crowd simulator that ignores statement
// difficulty: every task is answered with exactly the base accuracy, the
// paper's Definition 2 model.
func (in *Instance) UniformSimulator(basePc float64, seed int64) (*crowd.Simulator, error) {
	return crowd.NewSimulator(in.Truth, basePc, seed)
}
