package worlds

import (
	"math"
	"testing"

	"crowdfusion/internal/bookdata"
	"crowdfusion/internal/core"
	"crowdfusion/internal/crowd"
	"crowdfusion/internal/fusion"
)

func smallDataset(tb testing.TB) *bookdata.Dataset {
	tb.Helper()
	cfg := bookdata.DefaultConfig()
	cfg.Books = 12
	cfg.Sources = 15
	cfg.Seed = 7
	d, err := bookdata.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

func fuseMajority(tb testing.TB, d *bookdata.Dataset) []fusion.Truth {
	tb.Helper()
	truths, err := fusion.MajorityVote{}.Fuse(d.Claims)
	if err != nil {
		tb.Fatal(err)
	}
	return truths
}

func TestBuildAllShape(t *testing.T) {
	d := smallDataset(t)
	instances, err := BuildAll(d, fuseMajority(t, d), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != len(d.Books) {
		t.Fatalf("instances = %d, books = %d", len(instances), len(d.Books))
	}
	for _, in := range instances {
		if in.N() != len(d.Statements[in.ISBN]) {
			t.Errorf("%s: %d facts for %d statements", in.ISBN, in.N(), len(d.Statements[in.ISBN]))
		}
		if err := in.Joint.Validate(); err != nil {
			t.Errorf("%s: invalid joint: %v", in.ISBN, err)
		}
		if in.Joint.N() != in.N() {
			t.Errorf("%s: joint over %d facts, want %d", in.ISBN, in.Joint.N(), in.N())
		}
		for i, f := range in.Facts {
			if f.Prior < 0 || f.Prior > 1 {
				t.Errorf("%s fact %d prior %v", in.ISBN, i, f.Prior)
			}
			if f.Object == "" || f.ID == "" {
				t.Errorf("%s fact %d missing fields", in.ISBN, i)
			}
		}
	}
}

// TestCorrelationStructure: statements with the same canonical author set
// must be perfectly correlated, and statements with different sets mutually
// exclusive, in every support world except the none-world.
func TestCorrelationStructure(t *testing.T) {
	d := smallDataset(t)
	instances, err := BuildAll(d, fuseMajority(t, d), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instances {
		keys := make([]string, in.N())
		for i, s := range in.Statements {
			keys[i] = s.CanonicalKey()
		}
		for _, w := range in.Joint.Worlds() {
			if w == 0 {
				continue // none-world
			}
			// The set of true statements in this world must be
			// exactly one canonical group.
			var trueKey string
			for i := 0; i < in.N(); i++ {
				if w.Has(i) {
					if trueKey == "" {
						trueKey = keys[i]
					} else if keys[i] != trueKey {
						t.Fatalf("%s: world %v mixes author sets %q and %q",
							in.ISBN, w, trueKey, keys[i])
					}
				}
			}
			for i := 0; i < in.N(); i++ {
				if keys[i] == trueKey && !w.Has(i) {
					t.Fatalf("%s: world %v splits canonical group %q",
						in.ISBN, w, trueKey)
				}
			}
		}
	}
}

// TestTruthWorldInSupport: the gold world must be a support world (the
// generator guarantees at least one faithful statement per book, so the
// gold canonical set is always among the candidates).
func TestTruthWorldInSupport(t *testing.T) {
	d := smallDataset(t)
	instances, err := BuildAll(d, fuseMajority(t, d), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instances {
		if in.Joint.Prob(in.Truth) <= 0 {
			t.Errorf("%s: truth world %v has zero prior", in.ISBN, in.Truth)
		}
	}
}

func TestGoldMatchesTruthWorld(t *testing.T) {
	d := smallDataset(t)
	instances, err := BuildAll(d, fuseMajority(t, d), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instances {
		for i, g := range in.Gold {
			if in.Truth.Has(i) != g {
				t.Errorf("%s: truth world and gold disagree at fact %d", in.ISBN, i)
			}
		}
	}
}

// TestConfidencePropagates: a candidate set with higher fused confidence
// must get a higher prior world probability.
func TestConfidencePropagates(t *testing.T) {
	book := bookdata.Book{
		ISBN: "isbn-1", Title: "T", Domain: bookdata.DomainTextbook,
		Authors: []bookdata.Author{{First: "Ada", Last: "Lovelace"}},
	}
	statements := []bookdata.Statement{
		{ID: "a", ISBN: "isbn-1", Text: "Ada Lovelace", Names: []string{"Ada Lovelace"}, Gold: true},
		{ID: "b", ISBN: "isbn-1", Text: "Ada Byron", Names: []string{"Ada Byron"}},
	}
	conf := map[string]float64{"Ada Lovelace": 0.9, "Ada Byron": 0.1}
	in, err := Build(book, statements, conf, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pTrue, err := in.Joint.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	pFalse, err := in.Joint.Marginal(1)
	if err != nil {
		t.Fatal(err)
	}
	if pTrue <= pFalse {
		t.Errorf("confidence did not propagate: P(gold)=%v P(other)=%v", pTrue, pFalse)
	}
	// Rough proportion check: 0.9 vs 0.1 scaled by (1 - none prior).
	if math.Abs(pTrue-0.9*(1-0.02)) > 1e-9 {
		t.Errorf("P(gold) = %v, want %v", pTrue, 0.9*0.98)
	}
}

func TestNoneWorld(t *testing.T) {
	book := bookdata.Book{ISBN: "x", Title: "T",
		Authors: []bookdata.Author{{First: "A", Last: "B"}}}
	statements := []bookdata.Statement{
		{ID: "s", ISBN: "x", Text: "A B", Names: []string{"A B"}, Gold: true},
	}
	conf := map[string]float64{"A B": 1}

	withNone, err := Build(book, statements, conf, Options{NoneWorldPrior: 0.1, MinGroupMass: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if p := withNone.Joint.Prob(0); math.Abs(p-0.1) > 1e-9 {
		t.Errorf("none-world prior = %v, want 0.1", p)
	}

	without, err := Build(book, statements, conf, Options{NoneWorldPrior: 0, MinGroupMass: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if p := without.Joint.Prob(0); p != 0 {
		t.Errorf("disabled none-world still present with prior %v", p)
	}
	if _, err := Build(book, statements, conf, Options{NoneWorldPrior: -0.1}); err == nil {
		t.Error("negative none prior accepted")
	}
	if _, err := Build(book, statements, conf, Options{NoneWorldPrior: 0, MinGroupMass: -1}); err == nil {
		t.Error("negative MinGroupMass accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	book := bookdata.Book{ISBN: "x", Title: "T"}
	if _, err := Build(book, nil, nil, DefaultOptions()); err == nil {
		t.Error("empty statements accepted")
	}
	big := make([]bookdata.Statement, 65)
	for i := range big {
		big[i] = bookdata.Statement{ID: "s", Text: "t", Names: []string{"n"}}
	}
	if _, err := Build(book, big, nil, DefaultOptions()); err == nil {
		t.Error("oversized book accepted")
	}
}

// TestZeroConfidenceFloor: statements missing from the fusion output still
// yield worlds with non-zero prior via MinGroupMass.
func TestZeroConfidenceFloor(t *testing.T) {
	book := bookdata.Book{ISBN: "x", Title: "T",
		Authors: []bookdata.Author{{First: "A", Last: "B"}}}
	statements := []bookdata.Statement{
		{ID: "s1", ISBN: "x", Text: "A B", Names: []string{"A B"}, Gold: true},
		{ID: "s2", ISBN: "x", Text: "C D", Names: []string{"C D"}},
	}
	in, err := Build(book, statements, map[string]float64{"A B": 1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := in.Joint.Marginal(1)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Errorf("unendorsed statement has zero prior %v", p)
	}
	if p >= 0.5 {
		t.Errorf("unendorsed statement prior %v suspiciously high", p)
	}
}

// TestEndToEndEngineRun: a full instance drives the CrowdFusion engine and
// a difficulty-aware simulator without error, improving the posterior of
// the truth world on average.
func TestEndToEndEngineRun(t *testing.T) {
	d := smallDataset(t)
	instances, err := BuildAll(d, fuseMajority(t, d), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	improved, total := 0, 0
	for _, in := range instances {
		if in.N() < 2 {
			continue
		}
		sim, err := in.Simulator(0.85, crowd.DefaultDifficulty(), 99)
		if err != nil {
			t.Fatal(err)
		}
		eng := core.Engine{
			Prior:    in.Joint,
			Selector: core.NewGreedyPrunePre(),
			Crowd:    sim,
			Pc:       0.85,
			K:        2,
			Budget:   12,
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("%s: %v", in.ISBN, err)
		}
		if res.Final.Prob(in.Truth) > in.Joint.Prob(in.Truth) {
			improved++
		}
		total++
	}
	if total == 0 {
		t.Fatal("no instances exercised")
	}
	if improved*2 <= total {
		t.Errorf("truth world improved in only %d of %d instances", improved, total)
	}
}

func TestSimulators(t *testing.T) {
	d := smallDataset(t)
	instances, err := BuildAll(d, fuseMajority(t, d), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := instances[0]
	if _, err := in.Simulator(0.3, crowd.DefaultDifficulty(), 1); err == nil {
		t.Error("bad base accuracy accepted")
	}
	uni, err := in.UniformSimulator(0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.PerTask) != 0 {
		t.Error("uniform simulator has per-task overrides")
	}
	diff, err := in.Simulator(0.9, crowd.DefaultDifficulty(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Any non-easy statement must carry an override.
	for i, s := range in.Statements {
		_, has := diff.PerTask[i]
		if (s.Class != crowd.Easy) != has {
			t.Errorf("statement %d class %v override=%v", i, s.Class, has)
		}
	}
}
