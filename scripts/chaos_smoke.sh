#!/bin/sh
# chaos_smoke.sh — fault-injection smoke test of lease-fenced ownership.
#
# Boots a 3-node crowdfusiond cluster with every node behind its own
# chaosproxy (nodes advertise the PROXY addresses, so partitioning a proxy
# makes a node unreachable WITHOUT stopping it — the deposed owner keeps
# running and keeps trying to write). Three scenarios over one workload:
#
#   baseline  no faults; records the final posterior every faulted run
#             must reproduce bit for bit.
#   netsplit  partition the owner mid-refinement. Its lease renewals keep
#             landing in the shared store, so the adopter must STEAL the
#             unexpired lease at a higher epoch; the partitioned owner's
#             next write is refused HTTP 421 code "fenced" naming the new
#             holder, and the refusal leaves no trace in the history.
#   skew      same partition with the owner's clock skewed 3s behind
#             (-clock-skew): its leases are always expired from the
#             adopter's view, so takeover happens through plain expiry
#             (steal counter stays zero) — and the fence still holds.
#
# Each faulted scenario asserts: the deposed owner answers 421 "fenced"
# with the holder's address, crowdfusion_fenced_writes_refused_total
# advances on it, the adopted history never forks, and after healing the
# refinement loop finishes with a posterior bit-identical to baseline.
# Run via `make smoke-chaos`; CI runs it on every push.
#
# Usage: chaos_smoke.sh [path-to-crowdfusiond] [path-to-chaosproxy]
set -eu

BIN="${1:-./bin/crowdfusiond}"
PROXY="${2:-./bin/chaosproxy}"
BASE_PORT="${SMOKE_CHAOS_PORT:-18420}"
CREATE_BODY='{"marginals":[0.5,0.63,0.58,0.49],"pc":0.8,"k":2,"budget":6}'
RESP="$(mktemp)"
SCEN_IDX=0
PIDS=""     # every process of the CURRENT scenario
LOGS=""     # every log of the CURRENT scenario
TMPDIRS=""  # per-scenario data dirs, removed at exit
BASELINE="" # posterior of the unfaulted run

fail() {
    echo "chaos-smoke: FAIL: $*" >&2
    for log in $LOGS; do
        echo "--- $log ---" >&2
        cat "$log" >&2
    done
    exit 1
}

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for log in $LOGS; do
        rm -f "$log"
    done
    for d in $TMPDIRS; do
        rm -rf "$d"
    done
    rm -f "$RESP"
}
trap cleanup EXIT

# req METHOD URL [BODY]: sets STATUS, leaves the body in $RESP.
req() {
    if [ -n "${3:-}" ]; then
        STATUS=$(curl -s -o "$RESP" -w '%{http_code}' -X "$1" \
            -H 'Content-Type: application/json' -d "$3" "$2" 2>/dev/null) || STATUS=000
    else
        STATUS=$(curl -s -o "$RESP" -w '%{http_code}' -X "$1" "$2" 2>/dev/null) || STATUS=000
    fi
}

# routed METHOD PATH [BODY]: walk LIVE proxies, follow 421 redirects
# (not_owner AND fenced both carry the owner's address), retry while the
# cluster converges. Success leaves the body in $RESP.
routed() {
    r_hint=""
    r_try=0
    while [ "$r_try" -lt 80 ]; do
        r_try=$((r_try + 1))
        for base in $r_hint $LIVE; do
            req "$1" "$base$2" "${3:-}"
            case "$STATUS" in
            2*) return 0 ;;
            421) r_hint=$(sed -n 's/.*"owner": *"\([^"]*\)".*/\1/p' "$RESP") ;;
            000) r_hint="" ;;
            *) fail "routed $1 $2: HTTP $STATUS: $(cat "$RESP")" ;;
            esac
        done
        sleep 0.2
    done
    fail "routed $1 $2 did not settle"
}

wait_healthy() { # base
    i=0
    until curl -fsS "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 50 ] || fail "node $1 did not become healthy"
        sleep 0.1
    done
}

# merge_round: select through the routed path and merge all-true answers.
# Sets DONE=true when the select reports the session finished instead.
merge_round() {
    routed POST "/v1/sessions/$SID/select"
    if grep -q '"done": true' "$RESP"; then
        DONE=true
        return 0
    fi
    DONE=false
    TASKS=$(tr -d '\n' <"$RESP" | sed -n 's/.*"tasks": *\[\([0-9, ]*\)\].*/\1/p')
    [ -n "$TASKS" ] || fail "could not parse tasks from: $(cat "$RESP")"
    VERSION=$(sed -n 's/.*"version": *\([0-9]*\).*/\1/p' "$RESP" | head -n 1)
    N_TASKS=$(echo "$TASKS" | awk -F, '{print NF}')
    ANSWERS=$(awk -v n="$N_TASKS" 'BEGIN{for(i=1;i<=n;i++)printf "%strue",(i>1?",":"")}')
    routed POST "/v1/sessions/$SID/answers" \
        "{\"tasks\":[$TASKS],\"answers\":[$ANSWERS],\"version\":$VERSION}"
}

finish_loop() {
    rounds=0
    while :; do
        rounds=$((rounds + 1))
        [ "$rounds" -lt 20 ] || fail "refinement loop did not finish"
        merge_round
        [ "$DONE" = true ] && break
    done
}

# posterior: flatten the last routed GET body into "version spent done
# [marginals]" — the bit-identity token compared across runs (encoding/json
# emits the shortest round-tripping float form, so string equality is
# float equality).
posterior() {
    flat=$(tr -d ' \n' <"$RESP")
    echo "v$(echo "$flat" | sed -n 's/.*"version":\([0-9]*\).*/\1/p')" \
        "spent$(echo "$flat" | sed -n 's/.*"spent":\([0-9]*\).*/\1/p')" \
        "done$(echo "$flat" | sed -n 's/.*"done":\([a-z]*\).*/\1/p')" \
        "[$(echo "$flat" | sed -n 's/.*"marginals":\[\([^]]*\)\].*/\1/p')]"
}

# metric BASE NAME: prints the counter's value (0 when absent).
metric() {
    req GET "$1/metrics"
    v=$(sed -n "s/^$2 \([0-9]*\)\$/\1/p" "$RESP")
    echo "${v:-0}"
}

teardown() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    PIDS=""
    LOGS=""
}

# setup SKEW_FLAGS...: boot proxies + nodes for one scenario. Node 1 gets
# the extra flags (the clock-skew scenario skews only the victim). Sets
# N1..N3 (direct node URLs), P1..P3 (proxy URLs), CTL1 (node 1's proxy
# control API), LIVE, DATA.
setup() {
    pbase=$((BASE_PORT + SCEN_IDX * 20))
    SCEN_IDX=$((SCEN_IDX + 1))
    NP1=$((pbase + 1)) NP2=$((pbase + 2)) NP3=$((pbase + 3))
    PP1=$((pbase + 4)) PP2=$((pbase + 5)) PP3=$((pbase + 6))
    CP1=$((pbase + 7)) CP2=$((pbase + 8)) CP3=$((pbase + 9))
    N1="http://127.0.0.1:$NP1" N2="http://127.0.0.1:$NP2" N3="http://127.0.0.1:$NP3"
    P1="http://127.0.0.1:$PP1" P2="http://127.0.0.1:$PP2" P3="http://127.0.0.1:$PP3"
    CTL1="http://127.0.0.1:$CP1"
    PEERS="127.0.0.1:$PP1,127.0.0.1:$PP2,127.0.0.1:$PP3"
    DATA="$(mktemp -d)"
    TMPDIRS="$TMPDIRS $DATA"

    for i in 1 2 3; do
        eval "np=\$NP$i pp=\$PP$i cp=\$CP$i"
        plog="$(mktemp)"
        LOGS="$LOGS $plog"
        "$PROXY" -listen "127.0.0.1:$pp" -target "127.0.0.1:$np" \
            -ctl "127.0.0.1:$cp" >>"$plog" 2>&1 &
        PIDS="$PIDS $!"
    done
    for i in 1 2 3; do
        eval "np=\$NP$i pp=\$PP$i"
        nlog="$(mktemp)"
        LOGS="$LOGS $nlog"
        extra=""
        [ "$i" = 1 ] && extra="$*"
        # shellcheck disable=SC2086
        "$BIN" -addr "127.0.0.1:$np" -self "127.0.0.1:$pp" -peers "$PEERS" \
            -heartbeat 200ms -lease 1s -lease-renew 200ms \
            -store file -data-dir "$DATA" $extra >>"$nlog" 2>&1 &
        PIDS="$PIDS $!"
        eval "NLOG$i=\$nlog"
    done
    wait_healthy "$N1"
    wait_healthy "$N2"
    wait_healthy "$N3"
    LIVE="$P1 $P2 $P3"
}

# Sessions are minted by the node that serves the create, so creating
# through node 1's proxy pins ownership where the scenario needs it.
create_on_node1() {
    req POST "$P1/v1/sessions" "$CREATE_BODY"
    [ "$STATUS" = 201 ] || fail "create: HTTP $STATUS: $(cat "$RESP")"
    SID=$(sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' "$RESP")
    [ -n "$SID" ] || fail "no session id in: $(cat "$RESP")"
    req GET "$N1/v1/sessions/$SID"
    [ "$STATUS" = 200 ] || fail "node 1 does not serve its own session (HTTP $STATUS)"
}

# --- scenario: baseline (no faults) ---------------------------------------

setup
echo "chaos-smoke: [baseline] 3 nodes up behind proxies (leases 1s)"
create_on_node1
finish_loop
routed GET "/v1/sessions/$SID"
BASELINE=$(posterior)
echo "chaos-smoke: [baseline] posterior $BASELINE"
teardown

# --- faulted scenarios ----------------------------------------------------

# run_faulted NAME EXPECT_STEAL [SKEW_FLAGS...]: partition node 1 mid-
# refinement, assert the fence, heal, finish, compare with baseline.
run_faulted() {
    name=$1
    expect_steal=$2
    shift 2
    setup "$@"
    echo "chaos-smoke: [$name] 3 nodes up behind proxies (leases 1s${1:+, node1 $*})"
    create_on_node1
    merge_round
    grep -q '"merged": true' "$RESP" || fail "[$name] round 1 not merged: $(cat "$RESP")"

    # Partition node 1's proxy: peers cannot reach it, it can reach peers —
    # so it keeps believing it owns the session — and its renewal loop
    # still lands in the shared store (storage is not partitioned).
    req POST "$CTL1/partition"
    [ "$STATUS" = 204 ] || fail "[$name] partition control call: HTTP $STATUS"
    LIVE="$P2 $P3"
    echo "chaos-smoke: [$name] node 1 partitioned"

    # The survivors detect the death and adopt the session at a higher
    # fencing epoch (steal or expiry, per scenario).
    routed GET "/v1/sessions/$SID?rounds=true"
    ADOPTED=$(cat "$RESP")
    echo "chaos-smoke: [$name] session adopted by a survivor"

    # The deposed owner still serves reads of its resident copy, but its
    # next WRITE must be refused: 421, code "fenced", naming the holder.
    req POST "$N1/v1/sessions/$SID/select"
    if [ "$STATUS" = 200 ]; then
        TASKS=$(tr -d '\n' <"$RESP" | sed -n 's/.*"tasks": *\[\([0-9, ]*\)\].*/\1/p')
        VERSION=$(sed -n 's/.*"version": *\([0-9]*\).*/\1/p' "$RESP" | head -n 1)
        N_TASKS=$(echo "$TASKS" | awk -F, '{print NF}')
        ANSWERS=$(awk -v n="$N_TASKS" 'BEGIN{for(i=1;i<=n;i++)printf "%strue",(i>1?",":"")}')
        req POST "$N1/v1/sessions/$SID/answers" \
            "{\"tasks\":[$TASKS],\"answers\":[$ANSWERS],\"version\":$VERSION}"
    fi
    [ "$STATUS" = 421 ] || fail "[$name] deposed owner's write: HTTP $STATUS, want 421: $(cat "$RESP")"
    grep -q '"code": *"fenced"' "$RESP" || fail "[$name] 421 without fenced code: $(cat "$RESP")"
    HOLDER=$(sed -n 's/.*"owner": *"\([^"]*\)".*/\1/p' "$RESP")
    case "$HOLDER" in
    "$P2" | "$P3") ;;
    *) fail "[$name] fenced envelope names holder '$HOLDER', want $P2 or $P3" ;;
    esac
    echo "chaos-smoke: [$name] deposed owner's write refused fenced (holder $HOLDER)"

    # The fence is visible in the deposed owner's metrics.
    FENCED=$(metric "$N1" crowdfusion_fenced_writes_refused_total)
    [ "$FENCED" -ge 1 ] || fail "[$name] node 1 fenced_writes_refused_total = $FENCED, want >= 1"

    # Takeover mechanism is scenario-specific: a live lease must be stolen
    # (netsplit), an expired one adopted silently (skew).
    STOLEN=$(($(metric "$N2" crowdfusion_leases_stolen_total) + $(metric "$N3" crowdfusion_leases_stolen_total)))
    if [ "$expect_steal" = yes ]; then
        [ "$STOLEN" -ge 1 ] || fail "[$name] no survivor stole the unexpired lease"
    else
        [ "$STOLEN" = 0 ] || fail "[$name] expiry takeover counted as a steal ($STOLEN)"
    fi

    # History never forks: the refused write left no trace in the adopted
    # record.
    routed GET "/v1/sessions/$SID?rounds=true"
    [ "$(cat "$RESP")" = "$ADOPTED" ] || fail "[$name] fenced write forked the history:
--- at adoption ---
$ADOPTED
--- after refusal ---
$(cat "$RESP")"
    echo "chaos-smoke: [$name] refused write left no trace (fenced=$FENCED stolen=$STOLEN)"

    # Heal. Ownership re-homes to node 1, which re-acquires at a fresh
    # epoch and continues the loop on the adopter's flushed state.
    req POST "$CTL1/heal"
    [ "$STATUS" = 204 ] || fail "[$name] heal control call: HTTP $STATUS"
    LIVE="$P1 $P2 $P3"
    finish_loop
    routed GET "/v1/sessions/$SID"
    GOT=$(posterior)
    [ "$GOT" = "$BASELINE" ] || fail "[$name] posterior diverged from unfaulted run:
baseline: $BASELINE
faulted:  $GOT"
    echo "chaos-smoke: [$name] healed; posterior bit-identical to baseline"
    teardown
}

run_faulted netsplit yes
run_faulted skew no -clock-skew -3s

echo "chaos-smoke: PASS"
