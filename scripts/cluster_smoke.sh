#!/bin/sh
# cluster_smoke.sh — multi-node failover smoke test of crowdfusiond.
#
# Boots three daemons as a shard-aware cluster over ONE shared file-store
# data directory, creates sessions through each node, verifies the
# not_owner wire contract (HTTP 421 + owner address) and redirect routing,
# then SIGKILLs one node mid-refinement and asserts the survivors adopt
# its session by record replay: byte-identical GET, idempotent answer
# replay with no double-spent budget, and a refinement loop that finishes
# on the adopter. Run via `make smoke-cluster`; CI runs it on every push.
#
# Usage: cluster_smoke.sh [path-to-crowdfusiond]
set -eu

BIN="${1:-./bin/crowdfusiond}"
BASE_PORT="${SMOKE_CLUSTER_PORT:-18390}"
P1=$BASE_PORT
P2=$((BASE_PORT + 1))
P3=$((BASE_PORT + 2))
N1="http://127.0.0.1:$P1"
N2="http://127.0.0.1:$P2"
N3="http://127.0.0.1:$P3"
PEERS="127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$P3"
DATA="$(mktemp -d)"
LOG1="$(mktemp)"
LOG2="$(mktemp)"
LOG3="$(mktemp)"
RESP="$(mktemp)"
D1=""
D2=""
D3=""

fail() {
    echo "cluster-smoke: FAIL: $*" >&2
    for log in "$LOG1" "$LOG2" "$LOG3"; do
        echo "--- daemon log $log ---" >&2
        cat "$log" >&2
    done
    exit 1
}

cleanup() {
    for pid in $D1 $D2 $D3; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$LOG1" "$LOG2" "$LOG3" "$RESP" "$DATA"
}
trap cleanup EXIT

# start_node port logfile — starts a daemon in THIS shell (no command
# substitution: a subshell child could not be wait(2)ed on later); the pid
# is left in $! for the caller.
start_node() {
    "$BIN" -addr "127.0.0.1:$1" -self "127.0.0.1:$1" -peers "$PEERS" \
        -heartbeat 200ms -store file -data-dir "$DATA" \
        -log-format json >>"$2" 2>&1 &
}

wait_healthy() { # base
    i=0
    until curl -fsS "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 50 ] || fail "node $1 did not become healthy"
        sleep 0.1
    done
}

# req METHOD URL [BODY]: sets STATUS, leaves the body in $RESP.
req() {
    if [ -n "${3:-}" ]; then
        STATUS=$(curl -s -o "$RESP" -w '%{http_code}' -X "$1" \
            -H 'Content-Type: application/json' -d "$3" "$2" 2>/dev/null) || STATUS=000
    else
        STATUS=$(curl -s -o "$RESP" -w '%{http_code}' -X "$1" "$2" 2>/dev/null) || STATUS=000
    fi
}

# routed METHOD PATH [BODY]: the shell version of the ring-aware client —
# walk LIVE nodes, follow not_owner redirects, and keep retrying while the
# cluster converges on a new topology. Success leaves the body in $RESP.
routed() {
    r_hint=""
    r_try=0
    while [ "$r_try" -lt 60 ]; do
        r_try=$((r_try + 1))
        for base in $r_hint $LIVE; do
            req "$1" "$base$2" "${3:-}"
            case "$STATUS" in
            2*) return 0 ;;
            421) r_hint=$(sed -n 's/.*"owner": *"\([^"]*\)".*/\1/p' "$RESP") ;;
            000) r_hint="" ;; # dead or not yet up; fall through to the next
            *) fail "routed $1 $2: HTTP $STATUS: $(cat "$RESP")" ;;
            esac
        done
        sleep 0.2
    done
    fail "routed $1 $2 did not settle"
}

start_node "$P1" "$LOG1"
D1=$!
start_node "$P2" "$LOG2"
D2=$!
start_node "$P3" "$LOG3"
D3=$!
wait_healthy "$N1"
wait_healthy "$N2"
wait_healthy "$N3"
LIVE="$N1 $N2 $N3"
echo "cluster-smoke: 3 nodes healthy on :$P1 :$P2 :$P3 (shared data dir $DATA)"

# Every node reports the shared topology.
for base in $LIVE; do
    req GET "$base/healthz"
    grep -q '"peers_alive": 3' "$RESP" || fail "$base healthz lacks full cluster view: $(cat "$RESP")"
done

# Create one session through each node: each daemon mints IDs it owns, so
# the creating node serves the session.
CREATE_BODY='{"marginals":[0.5,0.63,0.58,0.49],"pc":0.8,"k":2,"budget":6}'
SIDS=""
for base in $LIVE; do
    req POST "$base/v1/sessions" "$CREATE_BODY"
    [ "$STATUS" = 201 ] || fail "create on $base: HTTP $STATUS: $(cat "$RESP")"
    SID=$(sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' "$RESP")
    [ -n "$SID" ] || fail "no id from create on $base"
    req GET "$base/v1/sessions/$SID"
    [ "$STATUS" = 200 ] || fail "creating node $base does not serve its own session $SID (HTTP $STATUS)"
    SIDS="$SIDS $SID"
done
echo "cluster-smoke: created sessions$SIDS"

# The not_owner wire contract: both non-owners answer 421 with the owner's
# address; following it lands on the session.
SID1=$(echo "$SIDS" | awk '{print $1}')
MISROUTES=0
for base in $N2 $N3; do
    req GET "$base/v1/sessions/$SID1"
    [ "$STATUS" = 421 ] || fail "non-owner $base: HTTP $STATUS, want 421"
    grep -q '"code": *"not_owner"' "$RESP" || fail "421 without not_owner code: $(cat "$RESP")"
    OWNER=$(sed -n 's/.*"owner": *"\([^"]*\)".*/\1/p' "$RESP")
    [ "$OWNER" = "$N1" ] || fail "421 names owner $OWNER, want $N1"
    req GET "$OWNER/v1/sessions/$SID1"
    [ "$STATUS" = 200 ] || fail "owner $OWNER refused redirect target (HTTP $STATUS)"
    MISROUTES=$((MISROUTES + 1))
done
[ "$MISROUTES" = 2 ] || fail "expected 2 misroutes, saw $MISROUTES"
echo "cluster-smoke: not_owner redirects OK (owner $N1)"

# Trace correlation across nodes: one fixed W3C traceparent, sent on a
# misrouted request and again when following its redirect, must appear in
# the JSON access logs of BOTH nodes it touched — the bouncing non-owner
# (status 421) and the owner that served it (status 200). This is the
# grep an operator runs to reconstruct a request's path across the fleet.
TRACE_ID="deadbeefcafef00d5eed5a1ad00dfade"
TP="00-${TRACE_ID}-00f067aa0ba902b7-01"
req2() { curl -s -o /dev/null -H "traceparent: $TP" "$1"; }
req2 "$N2/v1/sessions/$SID1"
req2 "$N1/v1/sessions/$SID1"
grep "\"trace_id\":\"$TRACE_ID\"" "$LOG2" | grep -q '"status":421' ||
    fail "misrouted node :$P2 did not log trace $TRACE_ID with its 421"
grep "\"trace_id\":\"$TRACE_ID\"" "$LOG1" | grep -q '"status":200' ||
    fail "owner :$P1 did not log trace $TRACE_ID with its 200"
echo "cluster-smoke: one trace id in both hops' JSON logs"

# One refinement round on node 1's session, through the owner.
routed POST "/v1/sessions/$SID1/select"
TASKS=$(tr -d '\n' <"$RESP" | sed -n 's/.*"tasks": *\[\([0-9, ]*\)\].*/\1/p')
[ -n "$TASKS" ] || fail "could not parse tasks from: $(cat "$RESP")"
N_TASKS=$(echo "$TASKS" | awk -F, '{print NF}')
ANSWERS=$(awk -v n="$N_TASKS" 'BEGIN{for(i=1;i<=n;i++)printf "%strue",(i>1?",":"")}')
MERGE_BODY="{\"tasks\":[$TASKS],\"answers\":[$ANSWERS],\"version\":0}"
routed POST "/v1/sessions/$SID1/answers" "$MERGE_BODY"
grep -q '"merged": true' "$RESP" || fail "merge not applied: $(cat "$RESP")"
echo "cluster-smoke: merged tasks [$TASKS] on the owner"

# Snapshot the acknowledged state, then SIGKILL the owner — no drain, no
# flush. Everything that must survive is already fsynced in the op log.
routed GET "/v1/sessions/$SID1?rounds=true"
BEFORE=$(cat "$RESP")
kill -KILL "$D1"
wait "$D1" 2>/dev/null || true
D1=""
LIVE="$N2 $N3"
echo "cluster-smoke: owner :$P1 SIGKILLed"

# The survivors detect the death via heartbeats and adopt the session by
# replaying its record from the shared store: the routed GET settles on a
# byte-identical response.
routed GET "/v1/sessions/$SID1?rounds=true"
AFTER=$(cat "$RESP")
[ "$AFTER" = "$BEFORE" ] || fail "adopted session diverged:
--- before ---
$BEFORE
--- after ---
$AFTER"
echo "cluster-smoke: session adopted with byte-identical state"

# Idempotent replay across the failover: recognized, not re-spent.
routed POST "/v1/sessions/$SID1/answers" "$MERGE_BODY"
grep -q '"merged": false' "$RESP" || fail "replay re-applied on adopter: $(cat "$RESP")"
grep -q "\"spent\": $N_TASKS" "$RESP" || fail "replay double-spent: $(cat "$RESP")"
echo "cluster-smoke: idempotent replay OK across failover"

# Finish the refinement loop on the survivors.
ROUNDS=0
while :; do
    ROUNDS=$((ROUNDS + 1))
    [ "$ROUNDS" -lt 20 ] || fail "loop did not finish"
    routed POST "/v1/sessions/$SID1/select"
    if grep -q '"done": true' "$RESP"; then
        break
    fi
    TASKS=$(tr -d '\n' <"$RESP" | sed -n 's/.*"tasks": *\[\([0-9, ]*\)\].*/\1/p')
    [ -n "$TASKS" ] || break
    VERSION=$(sed -n 's/.*"version": *\([0-9]*\).*/\1/p' "$RESP")
    N_TASKS=$(echo "$TASKS" | awk -F, '{print NF}')
    ANSWERS=$(awk -v n="$N_TASKS" 'BEGIN{for(i=1;i<=n;i++)printf "%strue",(i>1?",":"")}')
    routed POST "/v1/sessions/$SID1/answers" \
        "{\"tasks\":[$TASKS],\"answers\":[$ANSWERS],\"version\":$VERSION}"
done
routed GET "/v1/sessions/$SID1"
grep -q '"done": true' "$RESP" || fail "session not done: $(cat "$RESP")"
echo "cluster-smoke: refinement loop finished on the survivors"

# The adoption is visible in the survivors' metrics.
RECOVERED=0
for base in $LIVE; do
    req GET "$base/metrics"
    n=$(sed -n 's/^crowdfusion_sessions_recovered_total \([0-9]*\)$/\1/p' "$RESP")
    RECOVERED=$((RECOVERED + ${n:-0}))
done
[ "$RECOVERED" -ge 1 ] || fail "no survivor counted a recovered session"
echo "cluster-smoke: adoption visible in metrics (recovered=$RECOVERED)"

# Survivors drain cleanly.
for pid in $D2 $D3; do
    kill -TERM "$pid"
done
for pid in $D2 $D3; do
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || fail "daemon $pid did not exit after SIGTERM"
        sleep 0.1
    done
    wait "$pid" 2>/dev/null || fail "daemon $pid exited non-zero"
done
D2=""
D3=""
echo "cluster-smoke: PASS"
