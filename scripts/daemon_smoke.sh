#!/bin/sh
# daemon_smoke.sh — end-to-end smoke test of the crowdfusiond binary.
#
# Starts the daemon (with leases on, so the lease heartbeat and its
# operational surface are exercised), drives one refinement round over
# HTTP with curl (create session → select → answer → verify the marginals
# moved), checks /healthz and /metrics including the lease gauges, and
# shuts the daemon down cleanly with SIGTERM.
# Run via `make smoke`; CI runs it on every push.
#
# Usage: daemon_smoke.sh [path-to-crowdfusiond]
set -eu

BIN="${1:-./bin/crowdfusiond}"
LOG="$(mktemp)"

fail() {
    echo "smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# Bind an ephemeral port (-addr :0): the daemon logs the actual bound
# address, which is the contract scripts use instead of hardcoding ports.
# SMOKE_PORT overrides for environments that need a fixed port.
if [ -n "${SMOKE_PORT:-}" ]; then
    "$BIN" -addr "127.0.0.1:${SMOKE_PORT}" -debug-addr 127.0.0.1:0 -lease 5s -lease-renew 200ms >"$LOG" 2>&1 &
else
    "$BIN" -addr "127.0.0.1:0" -debug-addr 127.0.0.1:0 -lease 5s -lease-renew 200ms >"$LOG" 2>&1 &
fi
DAEMON=$!
SSE_LOG="$(mktemp)"
SSE_PID=""
cleanup() {
    [ -n "$SSE_PID" ] && kill "$SSE_PID" 2>/dev/null || true
    kill "$DAEMON" 2>/dev/null || true
    rm -f "$LOG" "$SSE_LOG"
}
trap cleanup EXIT

# Parse the bound address from the startup log.
i=0
ADDR=""
while [ -z "$ADDR" ]; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || fail "daemon did not log its bound address"
    # The debug listener logs "debug listening on …"; skip it — the
    # serving address is the plain "listening on …" line.
    ADDR=$(grep -v "debug listening" "$LOG" |
        sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' | head -n 1)
    [ -n "$ADDR" ] || sleep 0.1
done
BASE="http://${ADDR}"

# Wait for the daemon to accept requests.
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || fail "daemon did not become healthy"
    sleep 0.1
done
echo "smoke: daemon healthy on $ADDR"

# Create a session from fused marginals.
CREATE=$(curl -fsS -X POST "$BASE/v1/sessions" \
    -H 'Content-Type: application/json' \
    -d '{"marginals":[0.5,0.63,0.58,0.49],"pc":0.8,"k":2,"budget":6}') ||
    fail "create session"
ID=$(echo "$CREATE" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')
[ -n "$ID" ] || fail "no session id in: $CREATE"
echo "smoke: created session $ID"

# Select the first entropy-maximizing batch.
SELECT=$(curl -fsS -X POST "$BASE/v1/sessions/$ID/select") || fail "select"
echo "$SELECT" | grep -q '"tasks": \[' || fail "no tasks in: $SELECT"
echo "$SELECT" | grep -q '"task_entropy":' || fail "no task entropy in: $SELECT"
TASKS=$(echo "$SELECT" | tr -d '\n' | sed -n 's/.*"tasks": *\[\([0-9, ]*\)\].*/\1/p')
[ -n "$TASKS" ] || fail "could not parse tasks from: $SELECT"
echo "smoke: selected tasks [$TASKS]"

# Submit crowd answers (all true) for the selected batch.
N_TASKS=$(echo "$TASKS" | awk -F, '{print NF}')
ANSWERS=$(awk -v n="$N_TASKS" 'BEGIN{for(i=1;i<=n;i++)printf "%strue",(i>1?",":"")}')
MERGE=$(curl -fsS -X POST "$BASE/v1/sessions/$ID/answers" \
    -H 'Content-Type: application/json' \
    -d "{\"tasks\":[$TASKS],\"answers\":[$ANSWERS],\"version\":0}") ||
    fail "answers"
echo "$MERGE" | grep -q '"merged": true' || fail "merge not applied: $MERGE"
echo "$MERGE" | grep -q "\"spent\": $N_TASKS" || fail "budget not accounted: $MERGE"

# The refined marginals of the asked facts must have moved off the prior.
STATE=$(curl -fsS "$BASE/v1/sessions/$ID") || fail "get session"
echo "$STATE" | grep -q '"version": 1' || fail "version not advanced: $STATE"
echo "$STATE" | tr -d ' \n' | grep -q '"marginals":\[0.5,0.63,0.58,0.49\]' &&
    fail "marginals unchanged after merge: $STATE"
echo "smoke: posterior refined"

# A retry of the same answer set must replay, not double-merge.
REPLAY=$(curl -fsS -X POST "$BASE/v1/sessions/$ID/answers" \
    -H 'Content-Type: application/json' \
    -d "{\"tasks\":[$TASKS],\"answers\":[$ANSWERS],\"version\":0}") ||
    fail "replay"
echo "$REPLAY" | grep -q '"merged": false' || fail "retry was re-applied: $REPLAY"
echo "$REPLAY" | grep -q "\"spent\": $N_TASKS" || fail "retry double-spent: $REPLAY"
echo "smoke: idempotent replay OK"

# Incremental round under a live event stream: subscribe with curl -N,
# drive the next round one judgment at a time via partial answers, and
# check the final streamed posterior against the GET response bit for bit
# (encoding/json emits the shortest round-tripping float representation,
# so string equality is float equality).
curl -sN "$BASE/v1/sessions/$ID/events" >"$SSE_LOG" &
SSE_PID=$!
i=0
until grep -q '"type":"snapshot"' "$SSE_LOG" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || fail "subscriber saw no snapshot: $(cat "$SSE_LOG")"
    sleep 0.1
done

SELECT2=$(curl -fsS -X POST "$BASE/v1/sessions/$ID/select") || fail "second select"
TASKS2=$(echo "$SELECT2" | tr -d '\n' | sed -n 's/.*"tasks": *\[\([0-9, ]*\)\].*/\1/p')
[ -n "$TASKS2" ] || fail "could not parse tasks from: $SELECT2"
PART=""
for TASK in $(echo "$TASKS2" | tr ',' ' '); do
    PART=$(curl -fsS -X POST "$BASE/v1/sessions/$ID/answers" \
        -H 'Content-Type: application/json' \
        -d "{\"tasks\":[$TASK],\"answers\":[true],\"version\":1,\"partial\":true}") ||
        fail "partial answer for task $TASK"
done
echo "$PART" | grep -q '"merged": true' || fail "incremental round did not commit: $PART"
echo "smoke: incremental round committed"

# The stream must deliver the partials and the committing merge.
i=0
until grep -q '"type":"merge"' "$SSE_LOG" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || fail "subscriber saw no merge: $(cat "$SSE_LOG")"
    sleep 0.1
done
grep -q '"type":"select"' "$SSE_LOG" || fail "subscriber missed the select event"
grep -q '"type":"partial"' "$SSE_LOG" || fail "subscriber missed the partial events"
kill "$SSE_PID" 2>/dev/null || true
wait "$SSE_PID" 2>/dev/null || true
SSE_PID=""

STREAMED=$(grep '"type":"merge"' "$SSE_LOG" | tail -n 1 |
    sed -n 's/.*"marginals":\[\([^]]*\)\].*/\1/p')
[ -n "$STREAMED" ] || fail "no marginals in streamed merge: $(cat "$SSE_LOG")"
STATE2=$(curl -fsS "$BASE/v1/sessions/$ID") || fail "get session after stream"
FETCHED=$(echo "$STATE2" | tr -d ' \n' | sed -n 's/.*"marginals":\[\([^]]*\)\].*/\1/p')
[ "$STREAMED" = "$FETCHED" ] || fail "streamed posterior [$STREAMED] != fetched [$FETCHED]"
echo "smoke: streamed posterior matches GET"

# Operational endpoints.
N_TASKS2=$(echo "$TASKS2" | awk -F, '{print NF}')
METRICS=$(curl -fsS "$BASE/metrics") || fail "metrics"
echo "$METRICS" | grep -q '^crowdfusion_sessions_live 1$' || fail "sessions_live gauge: $METRICS"
echo "$METRICS" | grep -q '^crowdfusion_merges_applied_total 2$' || fail "merges counter: $METRICS"
echo "$METRICS" | grep -q '^crowdfusion_merge_replays_total 1$' || fail "replays counter: $METRICS"
echo "$METRICS" | grep -q "^crowdfusion_partial_answers_total $N_TASKS2\$" || fail "partials counter: $METRICS"
echo "$METRICS" | grep -q '^crowdfusion_streams_served_total 1$' || fail "streams counter: $METRICS"
echo "smoke: metrics OK"

# Lease surface: the live session's write lease is held and heartbeat
# renewals have landed; /healthz reports the lease state.
echo "$METRICS" | grep -q '^crowdfusion_leases_held 1$' || fail "leases_held gauge: $METRICS"
RENEWED=$(echo "$METRICS" | sed -n 's/^crowdfusion_leases_renewed_total \([0-9]*\)$/\1/p')
[ "${RENEWED:-0}" -ge 1 ] || fail "no lease renewals counted: $METRICS"
echo "$METRICS" | grep -q '^crowdfusion_fenced_writes_refused_total 0$' ||
    fail "single-writer run refused writes as fenced: $METRICS"
HEALTH=$(curl -fsS "$BASE/healthz") || fail "healthz"
echo "$HEALTH" | grep -q '"leases"' || fail "healthz lacks lease block: $HEALTH"
echo "$HEALTH" | grep -q '"held": 1' || fail "healthz lease count: $HEALTH"
echo "smoke: lease heartbeat OK (renewed=$RENEWED)"

# Tracing surface. A request carrying a W3C traceparent must join that
# trace: the response echoes a traceparent with the SAME trace id (new
# span id) and names its server-side root span in X-Request-Id.
TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
HDRS=$(curl -fsS -D - -o /dev/null \
    -H "traceparent: 00-${TRACE_ID}-00f067aa0ba902b7-01" \
    "$BASE/v1/sessions/$ID") || fail "traced get"
echo "$HDRS" | grep -qi "^traceparent: 00-${TRACE_ID}-" ||
    fail "response did not continue the caller's trace: $HDRS"
echo "$HDRS" | grep -qi '^x-request-id: [0-9a-f]' ||
    fail "no X-Request-Id header: $HDRS"
echo "smoke: traceparent round-trip OK"

# A forced error must carry the request id in its JSON envelope so the
# failure can be quoted against the access log and /debug/traces.
ERRBODY=$(curl -sS "$BASE/v1/sessions/does-not-exist") || fail "error probe"
echo "$ERRBODY" | grep -q '"request_id": *"[0-9a-f]' ||
    fail "error envelope lacks request_id: $ERRBODY"
echo "smoke: error envelope carries request_id"

# Debug listener: its bound address is logged the same way the serving
# one is; /debug/traces must know the trace we just sent, and the pprof
# CPU endpoint must answer a short profile.
DEBUG_ADDR=$(sed -n 's/.*debug listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$LOG" | head -n 1)
[ -n "$DEBUG_ADDR" ] || fail "daemon did not log its debug address"
TRACES=$(curl -fsS "http://${DEBUG_ADDR}/debug/traces?trace=${TRACE_ID}") ||
    fail "debug traces"
echo "$TRACES" | grep -q "$TRACE_ID" || fail "trace $TRACE_ID not recorded: $TRACES"
PPROF_STATUS=$(curl -s -o /dev/null -w '%{http_code}' \
    "http://${DEBUG_ADDR}/debug/pprof/profile?seconds=1") || fail "pprof profile"
[ "$PPROF_STATUS" = "200" ] || fail "pprof profile answered $PPROF_STATUS"
echo "smoke: debug endpoints OK on $DEBUG_ADDR"

# Worker-model surface: an em session learns a per-worker accuracy gap
# from its own traffic. Two planted workers answer attributed rounds —
# "alice" consistently (twice, pinning the pseudo-gold consensus),
# "mallory" with every judgment flipped — and the calibration report
# must estimate mallory below alice.
CREATE_EM=$(curl -fsS -X POST "$BASE/v1/sessions" \
    -H 'Content-Type: application/json' \
    -d '{"marginals":[0.5,0.63,0.58,0.49],"pc":0.8,"k":2,"budget":64,"worker_model":"em"}') ||
    fail "create em session"
echo "$CREATE_EM" | grep -q '"worker_model": "em"' || fail "em model not echoed: $CREATE_EM"
EMID=$(echo "$CREATE_EM" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')
[ -n "$EMID" ] || fail "no session id in: $CREATE_EM"

round_judgments() { # round_judgments <worker> <a0> <a1> <a2> <a3>
    printf '[{"task":0,"answer":%s,"worker":"%s","source":"smoke"},' "$2" "$1"
    printf '{"task":1,"answer":%s,"worker":"%s","source":"smoke"},' "$3" "$1"
    printf '{"task":2,"answer":%s,"worker":"%s","source":"smoke"},' "$4" "$1"
    printf '{"task":3,"answer":%s,"worker":"%s","source":"smoke"}]' "$5" "$1"
}
V=0
for WORKER in alice mallory alice; do
    if [ "$WORKER" = alice ]; then
        JS=$(round_judgments alice true false true false)
    else
        JS=$(round_judgments mallory false true false true)
    fi
    WMERGE=$(curl -fsS -X POST "$BASE/v1/sessions/$EMID/answers" \
        -H 'Content-Type: application/json' \
        -d "{\"judgments\":$JS,\"version\":$V}") ||
        fail "attributed round $V ($WORKER)"
    echo "$WMERGE" | grep -q '"merged": true' || fail "attributed round $V not merged: $WMERGE"
    V=$((V + 1))
done

CAL=$(curl -fsS "$BASE/v1/sessions/$EMID/calibration") || fail "calibration"
echo "$CAL" | grep -q '"worker_model": "em"' || fail "calibration model: $CAL"
echo "$CAL" | grep -q '"observations": 12' || fail "calibration observations: $CAL"
REFITS=$(echo "$CAL" | sed -n 's/.*"refits": *\([0-9]*\).*/\1/p' | head -n 1)
[ "${REFITS:-0}" -ge 1 ] || fail "no refits ran: $CAL"
# Workers sort by ID, so the first "accuracy" is alice's, the second
# mallory's; the planted gap must survive estimation.
ACCS=$(echo "$CAL" | sed -n 's/.*"accuracy": *\([0-9.]*\).*/\1/p' | head -n 2 | tr '\n' ' ')
GAP_OK=$(echo "$ACCS" | awk '{print (NF == 2 && $1 > $2) ? "yes" : "no"}')
[ "$GAP_OK" = yes ] || fail "accuracy gap not learned (alice mallory = $ACCS): $CAL"
curl -fsS "$BASE/v1/workers" | grep -q '"worker": "mallory"' || fail "fleet view lacks mallory"
WMETRICS=$(curl -fsS "$BASE/metrics") || fail "metrics after worker rounds"
WREFITS=$(echo "$WMETRICS" | sed -n 's/^crowdfusion_worker_refits_total \([0-9]*\)$/\1/p')
[ "${WREFITS:-0}" -ge 1 ] || fail "worker_refits_total: $WMETRICS"
echo "$WMETRICS" | grep -q '^crowdfusion_workers_tracked 2$' || fail "workers_tracked gauge: $WMETRICS"
WMERGES=$(echo "$WMETRICS" | sed -n 's/^crowdfusion_weighted_merges_total \([0-9]*\)$/\1/p')
[ "${WMERGES:-0}" -ge 1 ] || fail "weighted_merges_total: $WMETRICS"
echo "smoke: worker calibration gap learned (alice mallory = $ACCS, refits=$REFITS)"

# Graceful shutdown: SIGTERM must drain and exit zero.
kill -TERM "$DAEMON"
i=0
while kill -0 "$DAEMON" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "daemon did not exit after SIGTERM"
    sleep 0.1
done
wait "$DAEMON" 2>/dev/null || fail "daemon exited non-zero"
grep -q "drained, exiting" "$LOG" || fail "daemon did not drain cleanly"
echo "smoke: clean shutdown"
echo "smoke: PASS"
