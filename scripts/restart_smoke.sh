#!/bin/sh
# restart_smoke.sh — crash-recovery smoke test of the crowdfusiond binary.
#
# Starts the daemon with the durable file store, creates a session, merges
# one answer set, SIGKILLs the daemon (no drain, no flush), restarts it
# over the same -data-dir, and asserts the recovered session serves a
# bit-identical posterior, version, and budget — then that an idempotent
# replay of the merged answer set still doesn't double-spend, and that the
# refinement loop finishes cleanly on the restarted daemon.
# Run via `make smoke-restart`; CI runs it on every push.
#
# Usage: restart_smoke.sh [path-to-crowdfusiond]
set -eu

BIN="${1:-./bin/crowdfusiond}"
PORT="${SMOKE_PORT:-18378}"
BASE="http://127.0.0.1:${PORT}"
LOG="$(mktemp)"
DATA="$(mktemp -d)"
DAEMON=""

fail() {
    echo "restart-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2
    exit 1
}

cleanup() {
    [ -n "$DAEMON" ] && kill "$DAEMON" 2>/dev/null || true
    rm -rf "$LOG" "$DATA"
}
trap cleanup EXIT

start_daemon() {
    "$BIN" -addr "127.0.0.1:${PORT}" -store file -data-dir "$DATA" >>"$LOG" 2>&1 &
    DAEMON=$!
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 50 ] || fail "daemon did not become healthy"
        sleep 0.1
    done
}

start_daemon
echo "restart-smoke: daemon healthy on :$PORT (data dir $DATA)"

# Create a session and merge one answer set.
CREATE=$(curl -fsS -X POST "$BASE/v1/sessions" \
    -H 'Content-Type: application/json' \
    -d '{"marginals":[0.5,0.63,0.58,0.49],"pc":0.8,"k":2,"budget":6}') ||
    fail "create session"
ID=$(echo "$CREATE" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')
[ -n "$ID" ] || fail "no session id in: $CREATE"

SELECT=$(curl -fsS -X POST "$BASE/v1/sessions/$ID/select") || fail "select"
TASKS=$(echo "$SELECT" | tr -d '\n' | sed -n 's/.*"tasks": *\[\([0-9, ]*\)\].*/\1/p')
[ -n "$TASKS" ] || fail "could not parse tasks from: $SELECT"
N_TASKS=$(echo "$TASKS" | awk -F, '{print NF}')
ANSWERS=$(awk -v n="$N_TASKS" 'BEGIN{for(i=1;i<=n;i++)printf "%strue",(i>1?",":"")}')
MERGE_BODY="{\"tasks\":[$TASKS],\"answers\":[$ANSWERS],\"version\":0}"
MERGE=$(curl -fsS -X POST "$BASE/v1/sessions/$ID/answers" \
    -H 'Content-Type: application/json' -d "$MERGE_BODY") || fail "answers"
echo "$MERGE" | grep -q '"merged": true' || fail "merge not applied: $MERGE"
echo "restart-smoke: merged tasks [$TASKS]"

# Snapshot the acknowledged state, then SIGKILL — no drain, no flush.
BEFORE=$(curl -fsS "$BASE/v1/sessions/$ID?rounds=true") || fail "get before kill"
kill -KILL "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
DAEMON=""
curl -fsS "$BASE/healthz" >/dev/null 2>&1 && fail "daemon still serving after SIGKILL"
echo "restart-smoke: daemon SIGKILLed"

# Restart over the same data dir: the session must come back bit-identical.
start_daemon
grep -q "1 session(s) on disk" "$LOG" || fail "recovery scan did not find the session"
AFTER=$(curl -fsS "$BASE/v1/sessions/$ID?rounds=true") || fail "get after restart"
[ "$AFTER" = "$BEFORE" ] ||
    fail "recovered state diverged:
--- before ---
$BEFORE
--- after ---
$AFTER"
echo "restart-smoke: posterior, version and budget bit-identical after restart"

# Idempotent replay of the pre-crash answer set: recognized, not re-spent.
REPLAY=$(curl -fsS -X POST "$BASE/v1/sessions/$ID/answers" \
    -H 'Content-Type: application/json' -d "$MERGE_BODY") || fail "replay"
echo "$REPLAY" | grep -q '"merged": false' || fail "retry was re-applied: $REPLAY"
echo "$REPLAY" | grep -q "\"spent\": $N_TASKS" || fail "retry double-spent: $REPLAY"
echo "restart-smoke: idempotent replay OK across restart"

# Finish the refinement loop against the restarted daemon.
ROUNDS=0
while :; do
    ROUNDS=$((ROUNDS + 1))
    [ "$ROUNDS" -lt 20 ] || fail "loop did not finish"
    SELECT=$(curl -fsS -X POST "$BASE/v1/sessions/$ID/select") || fail "select (loop)"
    if echo "$SELECT" | grep -q '"done": true'; then
        break
    fi
    TASKS=$(echo "$SELECT" | tr -d '\n' | sed -n 's/.*"tasks": *\[\([0-9, ]*\)\].*/\1/p')
    [ -n "$TASKS" ] || break
    VERSION=$(echo "$SELECT" | sed -n 's/.*"version": *\([0-9]*\).*/\1/p')
    N_TASKS=$(echo "$TASKS" | awk -F, '{print NF}')
    ANSWERS=$(awk -v n="$N_TASKS" 'BEGIN{for(i=1;i<=n;i++)printf "%strue",(i>1?",":"")}')
    curl -fsS -X POST "$BASE/v1/sessions/$ID/answers" \
        -H 'Content-Type: application/json' \
        -d "{\"tasks\":[$TASKS],\"answers\":[$ANSWERS],\"version\":$VERSION}" >/dev/null ||
        fail "answers (loop)"
done
FINAL=$(curl -fsS "$BASE/v1/sessions/$ID") || fail "final get"
echo "$FINAL" | grep -q '"done": true' || fail "session not done: $FINAL"
echo "restart-smoke: refinement loop finished on the restarted daemon"

# Recovery metrics are exposed.
METRICS=$(curl -fsS "$BASE/metrics") || fail "metrics"
echo "$METRICS" | grep -q '^crowdfusion_sessions_recovered_total 1$' || fail "recovered counter: $METRICS"
echo "$METRICS" | grep -q '^crowdfusion_store_appends_total' || fail "store counters missing"

# Clean shutdown still works.
kill -TERM "$DAEMON"
i=0
while kill -0 "$DAEMON" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "daemon did not exit after SIGTERM"
    sleep 0.1
done
wait "$DAEMON" 2>/dev/null || fail "daemon exited non-zero"
DAEMON=""
echo "restart-smoke: PASS"
